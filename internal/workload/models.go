package workload

import (
	"fmt"

	"npudvfs/internal/op"
)

// transformerCfg parameterizes an encoder/decoder-style training
// iteration builder shared by GPT-3, BERT, ViT and DeiT.
type transformerCfg struct {
	name      string
	layers    int
	seq       int // tokens per micro-batch (batch folded in)
	hidden    int
	ffn       int
	heads     int
	gradAccum int // micro-batches per iteration
	l2MatMul  float64
	l2Vector  float64
	commEvery int     // layers between gradient AllReduce slices
	commTime  float64 // µs per AllReduce slice
	seed      int64
	// tinyPerFwd/tinyPerBwd add framework-generated micro-operators
	// (casts, reshapes, masks) per layer pass; real captures are
	// dominated by these (58.3% of operators, Sect. 7.2).
	tinyPerFwd, tinyPerBwd int
	// attnElems is the attention-matrix element count per layer
	// (batch x heads x seqlen^2): the softmax/mask/dropout kernels
	// stream it through HBM, forming the per-layer memory-bound
	// phases that fine-grained DVFS exploits.
	attnElems int
	// bubbleIdle is scheduler idle time in µs per micro-batch
	// boundary (pipeline bubbles).
	bubbleIdle float64
	// optPasses scales the optimizer's memory traffic (Adam reads and
	// writes weights, gradients and two moment tensors).
	optPasses int
}

var tinyNames = []string{
	"Cast", "Reshape", "Mul", "AttentionMask", "DropoutDoMask",
	"StridedSliceGrad", "ZerosLike", "Tile", "ExpandDims", "Squeeze",
	"OnesLike", "Assign",
}

func (c *transformerCfg) sprinkleTiny(b *builder, count int) {
	for i := 0; i < count; i++ {
		b.tiny(tinyNames[b.rng.Intn(len(tinyNames))])
	}
}

// attnLayer appends one transformer layer's forward pass.
func (c *transformerCfg) forward(b *builder, layer int) {
	tok := c.seq
	h := c.hidden
	shape := fmt.Sprintf("s%dh%d", tok, h)
	b.vector("LayerNorm", shape, tok*h, 1, 2, c.l2Vector, op.PingPongFreeIndep)
	b.matMul("MatMul-QKV", tok, h, 3*h, c.l2MatMul)
	b.tiny("Reshape")
	b.tiny("Transpose")
	// Attention scores and context, folded across heads.
	headDim := h / c.heads
	b.matMul("BatchMatMul-QK", tok, headDim*c.heads, tok, c.l2MatMul)
	// The attention-matrix phase: softmax, mask and dropout stream
	// batch*heads*seq² elements through HBM back to back, forming a
	// contiguous memory-bound (LFC) phase of several milliseconds.
	attnShape := fmt.Sprintf("a%d", c.attnElems)
	b.vector("AttentionMask", attnShape, c.attnElems, 2, 0.3, 0.1, op.PingPongFreeIndep)
	b.vector("SoftMax", attnShape, c.attnElems, 1, 0.6, 0.1, op.PingPongFreeDep)
	b.vector("DropoutDoMask", attnShape, c.attnElems, 2, 0.3, 0.1, op.PingPongFreeIndep)
	b.matMul("BatchMatMul-AV", tok, tok, headDim*c.heads, c.l2MatMul)
	b.tiny("Transpose")
	b.matMul("MatMul-Proj", tok, h, h, c.l2MatMul)
	b.vector("Add-Residual", shape, tok*h, 2, 0.5, 0.15, op.PingPongFreeIndep)
	b.vector("LayerNorm", shape, tok*h, 1, 2, c.l2Vector, op.PingPongFreeIndep)
	b.matMul("MatMul-FFN1", tok, h, c.ffn, c.l2MatMul)
	b.vector("Gelu", fmt.Sprintf("s%df%d", tok, c.ffn), tok*c.ffn, 1, 1.5, 0.12, op.PingPongFreeIndep)
	b.matMul("MatMul-FFN2", tok, c.ffn, h, c.l2MatMul)
	b.vector("Add-Residual", shape, tok*h, 2, 0.5, 0.15, op.PingPongFreeIndep)
	b.tiny("Cast")
	b.tiny("StridedSlice")
	c.sprinkleTiny(b, c.tinyPerFwd)
	if layer%7 == 3 {
		b.latencyBound("GatherV2", shape, tok*h/4, 0.5)
	}
}

// backward appends the layer's backward pass: roughly two matmuls per
// forward matmul (input gradient and weight gradient) plus vector
// gradient kernels.
func (c *transformerCfg) backward(b *builder, layer int) {
	tok := c.seq
	h := c.hidden
	shape := fmt.Sprintf("s%dh%d", tok, h)
	b.matMul("MatMulGrad-FFN2-dX", tok, h, c.ffn, c.l2MatMul)
	b.matMul("MatMulGrad-FFN2-dW", c.ffn, tok, h, c.l2MatMul)
	b.vector("GeluGrad", fmt.Sprintf("s%df%d", tok, c.ffn), tok*c.ffn, 2, 2, 0.12, op.PingPongFreeIndep)
	b.matMul("MatMulGrad-FFN1-dX", tok, c.ffn, h, c.l2MatMul)
	b.matMul("MatMulGrad-FFN1-dW", h, tok, c.ffn, c.l2MatMul)
	b.vector("LayerNormGrad", shape, tok*h, 2, 3, c.l2Vector, op.PingPongFreeDep)
	b.matMul("MatMulGrad-Proj-dX", tok, h, h, c.l2MatMul)
	b.matMul("MatMulGrad-Proj-dW", h, tok, h, c.l2MatMul)
	headDim := h / c.heads
	b.matMul("BatchMatMulGrad-AV", tok, headDim*c.heads, tok, c.l2MatMul)
	attnShape := fmt.Sprintf("a%d", c.attnElems)
	b.vector("DropoutDoMaskGrad", attnShape, c.attnElems, 2, 0.3, 0.1, op.PingPongFreeIndep)
	b.vector("SoftMaxGrad", attnShape, c.attnElems, 2, 0.6, 0.1, op.PingPongFreeDep)
	b.matMul("BatchMatMulGrad-QK", tok, tok, headDim*c.heads, c.l2MatMul)
	b.matMul("MatMulGrad-QKV-dX", tok, 3*h, h, c.l2MatMul)
	b.matMul("MatMulGrad-QKV-dW", h, tok, 3*h, c.l2MatMul)
	b.vector("LayerNormGrad", shape, tok*h, 2, 3, c.l2Vector, op.PingPongFreeDep)
	b.vector("AddGrad", shape, tok*h, 1, 0.5, 0.15, op.PingPongFreeIndep)
	for i := 0; i < 6; i++ {
		b.tiny("Cast")
	}
	c.sprinkleTiny(b, c.tinyPerBwd)
	if layer%5 == 2 {
		b.aicpu("DynamicShapeCompute", 25)
	}
}

// optimizer appends the parameter-update phase: Adam-style vector
// kernels per layer plus gradient AllReduce communication.
func (c *transformerCfg) optimizer(b *builder) {
	// Per-layer parameter count (QKV + proj + two FFN matrices),
	// sharded 8 ways across devices. Adam streams weights, gradients
	// and both moment tensors, so the update phase plus the gradient
	// AllReduce forms a long frequency-insensitive macro phase at the
	// end of every iteration.
	params := c.hidden * (4*c.hidden + 2*c.ffn) / 8
	passes := c.optPasses
	if passes < 1 {
		passes = 1
	}
	for l := 0; l < c.layers; l++ {
		shape := fmt.Sprintf("l%d", l%4)
		for pass := 0; pass < passes; pass++ {
			b.vector("AdamApplyOne", shape, params, 3, 1, 0.08, op.PingPongFreeIndep)
		}
		b.tiny("Mul")
		b.tiny("Sqrt")
		if l%c.commEvery == 0 {
			b.comm("AllReduce-Grad", c.commTime)
		}
	}
	b.aicpu("LossScaleUpdate", 40)
	b.idle(300)
}

func (c *transformerCfg) build() *Model {
	b := newBuilder(c.seed)
	for mb := 0; mb < c.gradAccum; mb++ {
		for l := 0; l < c.layers; l++ {
			c.forward(b, l)
		}
		b.idle(120)
		for l := c.layers - 1; l >= 0; l-- {
			c.backward(b, l)
		}
		if c.bubbleIdle > 0 {
			b.idle(c.bubbleIdle)
		}
		b.idle(150)
	}
	c.optimizer(b)
	return b.model(c.name)
}

// GPT3 returns one training iteration of a GPT-3-scale decoder stage:
// 48 resident layers (one pipeline stage of the full model), hidden
// width 12288, 4096 tokens per micro-batch, 6 gradient-accumulation
// micro-batches. The result is ~18,000 operators per iteration with a
// multi-second duration at 1800 MHz, matching the scale reported in
// Sect. 7.4.
func GPT3() *Model {
	return (&transformerCfg{
		name:       "GPT3",
		layers:     48,
		seq:        4096,
		hidden:     12288,
		ffn:        4 * 12288,
		heads:      96,
		gradAccum:  6,
		l2MatMul:   0.75,
		l2Vector:   0.18,
		commEvery:  2,
		commTime:   2600,
		seed:       101,
		tinyPerFwd: 10,
		tinyPerBwd: 12,
		attnElems:  96 * 4096 * 4096, // 96 heads, seq 4096 (pre-flash-attention)
		bubbleIdle: 30000,
		optPasses:  2,
	}).build()
}

// BERT returns one BERT-large training iteration (24 layers, hidden
// 1024, 512x32 tokens).
func BERT() *Model {
	return (&transformerCfg{
		name:       "BERT",
		layers:     24,
		seq:        512 * 32,
		hidden:     1024,
		ffn:        4096,
		heads:      16,
		gradAccum:  4,
		l2MatMul:   0.8,
		l2Vector:   0.2,
		commEvery:  3,
		commTime:   900,
		seed:       102,
		tinyPerFwd: 6,
		tinyPerBwd: 8,
		attnElems:  32 * 16 * 512 * 512, // batch 32, 16 heads, seq 512
		bubbleIdle: 1500,
		optPasses:  2,
	}).build()
}

// ViTBase returns one ViT-Base training iteration.
func ViTBase() *Model {
	return (&transformerCfg{
		name:       "Vit_base",
		layers:     12,
		seq:        197 * 256,
		hidden:     768,
		ffn:        3072,
		heads:      12,
		gradAccum:  1,
		l2MatMul:   0.8,
		l2Vector:   0.25,
		commEvery:  3,
		commTime:   600,
		seed:       103,
		tinyPerFwd: 6,
		tinyPerBwd: 8,
		attnElems:  256 * 12 * 197 * 197, // batch 256, 12 heads, 197 tokens
		bubbleIdle: 1000,
		optPasses:  2,
	}).build()
}

// DeiTSmall returns one DeiT-small training iteration.
func DeiTSmall() *Model {
	return (&transformerCfg{
		name:       "Deit_small",
		layers:     12,
		seq:        197 * 256,
		hidden:     384,
		ffn:        1536,
		heads:      6,
		gradAccum:  1,
		l2MatMul:   0.85,
		l2Vector:   0.3,
		commEvery:  4,
		commTime:   350,
		seed:       104,
		tinyPerFwd: 6,
		tinyPerBwd: 8,
		attnElems:  256 * 6 * 197 * 197,
		bubbleIdle: 1000,
		optPasses:  2,
	}).build()
}

// cnnCfg parameterizes convolutional training iterations.
type cnnCfg struct {
	name  string
	batch int
	seed  int64
	// blocks lists (inC, outC, outHW, kernel, repeats) stages.
	blocks []cnnStage
	fc     []int // fully-connected widths appended at the end
	l2Conv float64
	// accum repeats the forward+backward phase (gradient
	// accumulation), scaling the iteration length.
	accum int
}

type cnnStage struct {
	inC, outC, outHW, kernel, repeats int
	depthwise                         bool
	// bottleneck emits the ResNet 1x1/3x3/1x1 conv triple per repeat
	// instead of a single convolution.
	bottleneck bool
}

func (c *cnnCfg) build() *Model {
	b := newBuilder(c.seed)
	accum := c.accum
	if accum < 1 {
		accum = 1
	}
	for mb := 0; mb < accum; mb++ {
		c.buildPass(b)
	}
	c.buildOptimizer(b)
	return b.model(c.name)
}

func (c *cnnCfg) buildPass(b *builder) {
	// Forward.
	for si, st := range c.blocks {
		for r := 0; r < st.repeats; r++ {
			inC := st.inC
			if r > 0 {
				inC = st.outC
			}
			effIn := inC
			if st.depthwise {
				effIn = 1
			}
			if st.bottleneck {
				mid := st.outC / 4
				b.conv2d("Conv2D", c.batch, effIn, mid, st.outHW, st.outHW, 1, 1, c.l2Conv)
				b.conv2d("Conv2D", c.batch, mid, mid, st.outHW, st.outHW, st.kernel, st.kernel, c.l2Conv)
				b.conv2d("Conv2D", c.batch, mid, st.outC, st.outHW, st.outHW, 1, 1, c.l2Conv)
			} else {
				b.conv2d("Conv2D", c.batch, effIn, st.outC, st.outHW, st.outHW, st.kernel, st.kernel, c.l2Conv)
			}
			elems := c.batch * st.outC * st.outHW * st.outHW
			b.vector("BNTrainingReduce", fmt.Sprintf("s%dr%d", si, r%2), elems, 1, 1, 0.25, op.PingPongFreeIndep)
			b.vector("BNTrainingUpdate", fmt.Sprintf("s%dr%d", si, r%2), elems, 2, 2, 0.25, op.PingPongFreeDep)
			b.vector("Relu", fmt.Sprintf("s%d", si), elems, 1, 0.5, 0.2, op.PingPongFreeIndep)
			b.tiny("Cast")
			if r%2 == 1 {
				b.vector("Add", fmt.Sprintf("s%d", si), elems, 2, 0.5, 0.2, op.PingPongFreeIndep)
				b.tiny("MemSet")
			}
		}
		b.latencyBound("MaxPool", fmt.Sprintf("s%d", si), c.batch*st.outC*st.outHW*st.outHW/4, 0.4)
	}
	for i, w := range c.fc {
		in := 2048
		if i > 0 {
			in = c.fc[i-1]
		}
		b.matMul("MatMul-FC", c.batch, in, w, 0.8)
		b.tiny("BiasAdd")
	}
	b.vector("SoftmaxCrossEntropy", "loss", c.batch*1000, 2, 3, 0.3, op.PingPongFreeDep)
	b.idle(80)
	// Backward: one gradient conv pair per forward conv plus BN/ReLU
	// gradients.
	for si := len(c.blocks) - 1; si >= 0; si-- {
		st := c.blocks[si]
		for r := 0; r < st.repeats; r++ {
			effIn := st.inC
			if st.depthwise {
				effIn = 1
			}
			if st.bottleneck {
				mid := st.outC / 4
				b.conv2d("Conv2DBackpropInput", c.batch, mid, effIn, st.outHW, st.outHW, 1, 1, c.l2Conv)
				b.conv2d("Conv2DBackpropFilter", c.batch, effIn, mid, st.outHW, st.outHW, 1, 1, c.l2Conv)
				b.conv2d("Conv2DBackpropInput", c.batch, mid, mid, st.outHW, st.outHW, st.kernel, st.kernel, c.l2Conv)
				b.conv2d("Conv2DBackpropFilter", c.batch, mid, mid, st.outHW, st.outHW, st.kernel, st.kernel, c.l2Conv)
				b.conv2d("Conv2DBackpropInput", c.batch, st.outC, mid, st.outHW, st.outHW, 1, 1, c.l2Conv)
				b.conv2d("Conv2DBackpropFilter", c.batch, mid, st.outC, st.outHW, st.outHW, 1, 1, c.l2Conv)
			} else {
				b.conv2d("Conv2DBackpropInput", c.batch, st.outC, effIn, st.outHW, st.outHW, st.kernel, st.kernel, c.l2Conv)
				b.conv2d("Conv2DBackpropFilter", c.batch, effIn, st.outC, st.outHW, st.outHW, st.kernel, st.kernel, c.l2Conv)
			}
			elems := c.batch * st.outC * st.outHW * st.outHW
			b.vector("BNTrainingUpdateGrad", fmt.Sprintf("s%dr%d", si, r%2), elems, 2, 2, 0.25, op.PingPongFreeDep)
			b.vector("ReluGrad", fmt.Sprintf("s%d", si), elems, 2, 0.5, 0.2, op.PingPongFreeIndep)
			b.tiny("Cast")
			b.tiny("TransData")
		}
		if si%2 == 0 {
			b.aicpu("ShapeInference", 18)
		}
	}
}

// buildOptimizer appends the SGD-with-momentum update phase.
func (c *cnnCfg) buildOptimizer(b *builder) {
	for si := range c.blocks {
		b.vector("ApplyMomentum", fmt.Sprintf("s%d", si%3), 2_000_000, 3, 1.5, 0.1, op.PingPongFreeIndep)
		b.tiny("Mul")
		if si%2 == 0 {
			b.comm("AllReduce-Grad", 450)
		}
	}
	b.idle(120)
}

// ResNet50 returns one ResNet-50 training iteration at batch 256.
func ResNet50() *Model {
	return (&cnnCfg{
		name:  "Resnet50",
		batch: 256,
		seed:  201,
		blocks: []cnnStage{
			{inC: 64, outC: 256, outHW: 56, kernel: 3, repeats: 3, bottleneck: true},
			{inC: 256, outC: 512, outHW: 28, kernel: 3, repeats: 4, bottleneck: true},
			{inC: 512, outC: 1024, outHW: 14, kernel: 3, repeats: 6, bottleneck: true},
			{inC: 1024, outC: 2048, outHW: 7, kernel: 3, repeats: 3, bottleneck: true},
		},
		fc:     []int{1000},
		l2Conv: 0.7,
		accum:  4,
	}).build()
}

// ResNet152 returns one ResNet-152 training iteration at batch 256.
func ResNet152() *Model {
	return (&cnnCfg{
		name:  "Resnet152",
		batch: 256,
		seed:  202,
		blocks: []cnnStage{
			{inC: 64, outC: 256, outHW: 56, kernel: 3, repeats: 3, bottleneck: true},
			{inC: 256, outC: 512, outHW: 28, kernel: 3, repeats: 8, bottleneck: true},
			{inC: 512, outC: 1024, outHW: 14, kernel: 3, repeats: 36, bottleneck: true},
			{inC: 1024, outC: 2048, outHW: 7, kernel: 3, repeats: 3, bottleneck: true},
		},
		fc:     []int{1000},
		l2Conv: 0.7,
		accum:  4,
	}).build()
}

// VGG19 returns one VGG-19 training iteration at batch 128.
func VGG19() *Model {
	return (&cnnCfg{
		name:  "VGG19",
		batch: 128,
		seed:  203,
		blocks: []cnnStage{
			{inC: 3, outC: 64, outHW: 224, kernel: 3, repeats: 2},
			{inC: 64, outC: 128, outHW: 112, kernel: 3, repeats: 2},
			{inC: 128, outC: 256, outHW: 56, kernel: 3, repeats: 4},
			{inC: 256, outC: 512, outHW: 28, kernel: 3, repeats: 4},
			{inC: 512, outC: 512, outHW: 14, kernel: 3, repeats: 4},
		},
		fc:     []int{4096, 4096, 1000},
		l2Conv: 0.75,
		accum:  4,
	}).build()
}

// AlexNet returns one AlexNet training iteration at batch 256.
func AlexNet() *Model {
	return (&cnnCfg{
		name:  "AlexNet",
		batch: 256,
		seed:  204,
		blocks: []cnnStage{
			{inC: 3, outC: 96, outHW: 55, kernel: 11, repeats: 1},
			{inC: 96, outC: 256, outHW: 27, kernel: 5, repeats: 1},
			{inC: 256, outC: 384, outHW: 13, kernel: 3, repeats: 2},
			{inC: 384, outC: 256, outHW: 13, kernel: 3, repeats: 1},
		},
		fc:     []int{4096, 4096, 1000},
		l2Conv: 0.8,
		accum:  8,
	}).build()
}

// ShuffleNetV2Plus returns one ShuffleNetV2+ training iteration: a
// long trace of small depthwise and pointwise convolutions. The
// operator count lands near the 4,343 reported for this model in
// Sect. 4.3's fit-cost comparison.
func ShuffleNetV2Plus() *Model {
	b := newBuilder(205)
	const batch = 256
	type unit struct {
		c, hw, repeats int
	}
	units := []unit{
		{c: 48, hw: 56, repeats: 32},
		{c: 128, hw: 28, repeats: 68},
		{c: 256, hw: 14, repeats: 112},
		{c: 512, hw: 7, repeats: 46},
	}
	build := func(kind string, cycles int) {
		for si, u := range units {
			for r := 0; r < u.repeats; r++ {
				elems := batch * u.c * u.hw * u.hw
				b.conv2d("Conv2D-PW"+kind, batch, u.c, u.c, u.hw, u.hw, 1, 1, 0.6)
				b.conv2d("DepthwiseConv2D"+kind, batch, 1, u.c, u.hw, u.hw, 3, 3, 0.5)
				b.vector("BNTrainingUpdate"+kind, fmt.Sprintf("u%d", si), elems, 2, 2, 0.25, op.PingPongFreeDep)
				b.vector("Relu"+kind, fmt.Sprintf("u%d", si), elems, 1, 0.5, 0.2, op.PingPongFreeIndep)
				b.vector("ChannelShuffle"+kind, fmt.Sprintf("u%d", si), elems, 1, 0.3, 0.15, op.PingPongFreeIndep)
				b.tiny("Concat")
				b.tiny("Split")
				_ = cycles
			}
		}
	}
	build("", 1)     // forward
	build("Grad", 2) // backward
	for i := 0; i < 120; i++ {
		b.vector("ApplyMomentum", fmt.Sprintf("g%d", i%5), 400_000, 3, 1.5, 0.1, op.PingPongFreeIndep)
		b.tiny("Mul")
	}
	b.comm("AllReduce-Grad", 600)
	b.idle(90)
	return b.model("ShufflenetV2plus")
}

// Llama2Inference returns one host-bound decode step of a Llama2-style
// model (Sect. 8.4): small memory-bound GEMV-like matmuls whose weights
// stream from HBM, separated by host-dispatch idle gaps that dominate
// the step. Because the NPU waits on the host, lowering the core
// frequency mostly fills idle time instead of extending the step.
func Llama2Inference() *Model {
	b := newBuilder(301)
	const (
		layers = 32
		hidden = 4096
		batch  = 16
	)
	for l := 0; l < layers; l++ {
		gap := func() { b.idle(30 + 20*b.rng.Float64()) }
		b.vector("RMSNorm", "h4096", batch*hidden, 1, 2, 0.3, op.PingPongFreeIndep)
		gap()
		b.matMul("MatMul-QKV", batch, hidden, 3*hidden, 0.55)
		gap()
		b.vector("RoPE", "h4096", batch*hidden, 1, 2, 0.4, op.PingPongFreeIndep)
		gap()
		b.matMul("MatMul-Attn", batch, hidden, hidden, 0.55)
		gap()
		b.vector("RMSNorm", "h4096", batch*hidden, 1, 2, 0.3, op.PingPongFreeIndep)
		gap()
		b.matMul("MatMul-Gate", batch, hidden, 11008, 0.55)
		gap()
		b.vector("SiLU", "f11008", batch*11008, 1, 1.5, 0.2, op.PingPongFreeIndep)
		gap()
		b.matMul("MatMul-Down", batch, 11008, hidden, 0.55)
		gap()
		b.tiny("Cast")
		gap()
	}
	b.matMul("MatMul-LMHead", batch, hidden, 32000, 0.55)
	b.aicpu("Sampling", 180)
	b.idle(250)
	return b.model("Llama2-inference")
}

// MicroOp returns a workload that repeats a single operator, used for
// the Softmax/Tanh single-operator power-model validation subjects of
// Sect. 7.3.
func MicroOp(spec op.Spec, repeat int) *Model {
	m := &Model{Name: "micro-" + spec.Key()}
	for i := 0; i < repeat; i++ {
		m.Trace = append(m.Trace, spec)
	}
	return m
}

// SoftmaxOp and TanhOp are the two standalone operator test subjects
// used in the power-model validation (Table 2).
func SoftmaxOp() op.Spec {
	return op.Spec{
		Name: "SoftMax", Shape: "8192x2048", Class: op.Compute,
		Scenario: op.PingPongFreeDep, Blocks: 8,
		LoadBytes: 8192 * 2048 * BytesPerElem / 8, StoreBytes: 8192 * 2048 * BytesPerElem / 8,
		CoreCycles: 8192 * 2048 * 3 / VecElemsPerCycle / 8, CorePipe: op.Vector,
		L2Hit: 0.35, PrePostTime: 2,
	}
}

func TanhOp() op.Spec {
	return op.Spec{
		Name: "Tanh", Shape: "16M", Class: op.Compute,
		Scenario: op.PingPongFreeIndep, Blocks: 8,
		LoadBytes: 16 << 20 * BytesPerElem / 8, StoreBytes: 16 << 20 * BytesPerElem / 8,
		CoreCycles: 16 << 20 * 2 / VecElemsPerCycle / 8, CorePipe: op.Vector,
		L2Hit: 0.4, PrePostTime: 2,
	}
}

// PerfEvalModels returns the seven models used to validate the
// performance model in Sect. 7.2: Resnet50, Vit_base, Bert,
// Deit_small, AlexNet, ShufflenetV2plus and VGG19.
func PerfEvalModels() []*Model {
	return []*Model{
		ResNet50(), ViTBase(), BERT(), DeiTSmall(), AlexNet(), ShuffleNetV2Plus(), VGG19(),
	}
}

// RepresentativeOps returns the five operators of Fig. 16 (Add,
// RealDiv, ReduceMean, Conv2D, BNTrainingUpdate) with execution times
// spanning roughly 20-300 µs on the reference chip.
func RepresentativeOps() []op.Spec {
	return []op.Spec{
		{
			Name: "Add", Shape: "10M", Class: op.Compute, Scenario: op.PingPongFreeIndep,
			Blocks: 6, LoadBytes: 2 * 10e6 * BytesPerElem / 6, StoreBytes: 10e6 * BytesPerElem / 6,
			CoreCycles: 10e6 * 0.5 / VecElemsPerCycle / 6, CorePipe: op.Vector, L2Hit: 0.45, PrePostTime: 2,
		},
		{
			Name: "RealDiv", Shape: "14M", Class: op.Compute, Scenario: op.PingPongFreeIndep,
			Blocks: 6, LoadBytes: 2 * 14e6 * BytesPerElem / 6, StoreBytes: 14e6 * BytesPerElem / 6,
			CoreCycles: 14e6 * 1.2 / VecElemsPerCycle / 6, CorePipe: op.Vector, L2Hit: 0.5, PrePostTime: 2,
		},
		{
			Name: "ReduceMean", Shape: "16M", Class: op.Compute, Scenario: op.PingPongFreeDep,
			Blocks: 8, LoadBytes: 16e6 * BytesPerElem / 8, StoreBytes: 16e6 * BytesPerElem / 64,
			CoreCycles: 16e6 * 1.5 / VecElemsPerCycle / 8, CorePipe: op.Vector, L2Hit: 0.35, PrePostTime: 2,
		},
		{
			Name: "Conv2D", Shape: "b256c512k3", Class: op.Compute, Scenario: op.PingPongIndep,
			Blocks: 8, LoadBytes: (256*512*22*22 + 512*512*9) * BytesPerElem / 8,
			StoreBytes: 256 * 512 * 20 * 20 * BytesPerElem / 8,
			CoreCycles: 256 * 512 * 512 * 20 * 20 * 9 / CubeMACsPerCycle / 8,
			CorePipe:   op.Cube, L2Hit: 0.7, PrePostTime: 2,
		},
		{
			Name: "BNTrainingUpdate", Shape: "25M", Class: op.Compute, Scenario: op.PingPongFreeDep,
			Blocks: 8, LoadBytes: 2 * 25e6 * BytesPerElem / 8, StoreBytes: 25e6 * BytesPerElem / 8,
			CoreCycles: 25e6 * 2 / VecElemsPerCycle / 8, CorePipe: op.Vector, L2Hit: 0.3, PrePostTime: 2,
		},
	}
}

// MixtralMoE returns one training iteration of a Mixtral-style
// mixture-of-experts decoder stage. MoE training has a distinctive
// DVFS profile: expert FFNs are large compute-bound matmuls, but each
// layer also pays two AllToAll exchanges, gating/top-k vector work and
// expert-imbalance idle bubbles — a trace whose insensitive share is
// much larger than a dense transformer's.
func MixtralMoE() *Model {
	b := newBuilder(106)
	const (
		layers  = 16
		tok     = 4096
		hidden  = 4096
		ffn     = 14336
		experts = 8
		topK    = 2
	)
	for mb := 0; mb < 4; mb++ {
		for l := 0; l < layers; l++ {
			shape := fmt.Sprintf("s%dh%d", tok, hidden)
			// Attention block (dense, as in Mixtral).
			b.vector("RMSNorm", shape, tok*hidden, 1, 2, 0.2, op.PingPongFreeIndep)
			b.matMul("MatMul-QKV", tok, hidden, 3*hidden, 0.8)
			attn := 32 * tok * tok / 4
			b.vector("AttentionMask", fmt.Sprintf("a%d", attn), attn, 2, 0.3, 0.1, op.PingPongFreeIndep)
			b.vector("SoftMax", fmt.Sprintf("a%d", attn), attn, 1, 0.6, 0.1, op.PingPongFreeDep)
			b.matMul("MatMul-AttnOut", tok, hidden, hidden, 0.8)
			b.vector("Add-Residual", shape, tok*hidden, 2, 0.5, 0.15, op.PingPongFreeIndep)
			// MoE block: gate, dispatch, expert FFNs, combine.
			b.vector("RMSNorm", shape, tok*hidden, 1, 2, 0.2, op.PingPongFreeIndep)
			b.matMul("MatMul-Gate", tok, hidden, experts, 0.9)
			b.aicpu("TopKRouting", 35)
			b.comm("AllToAll-Dispatch", 900)
			// Each device hosts one expert; it processes roughly
			// tok*topK/experts tokens, with imbalance bubbles when the
			// router skews.
			expertTok := tok * topK / experts
			b.matMul("MatMul-ExpertUp", expertTok, hidden, ffn, 0.8)
			b.vector("SiLU", fmt.Sprintf("e%d", expertTok*ffn), expertTok*ffn, 1, 1.5, 0.12, op.PingPongFreeIndep)
			b.matMul("MatMul-ExpertDown", expertTok, ffn, hidden, 0.8)
			b.idle(150 + 120*b.rng.Float64()) // expert-imbalance bubble
			b.comm("AllToAll-Combine", 900)
			b.vector("Add-Residual", shape, tok*hidden, 2, 0.5, 0.15, op.PingPongFreeIndep)
			b.tiny("Cast")
			b.tiny("Reshape")
			for i := 0; i < 6; i++ {
				b.tiny(tinyNames[b.rng.Intn(len(tinyNames))])
			}
		}
		b.idle(2500)
		// Backward: mirrored matmul pairs plus vector gradients.
		for l := layers - 1; l >= 0; l-- {
			shape := fmt.Sprintf("s%dh%d", tok, hidden)
			expertTok := tok * topK / experts
			b.comm("AllToAll-DispatchGrad", 900)
			b.matMul("MatMulGrad-ExpertDown-dX", expertTok, hidden, ffn, 0.8)
			b.matMul("MatMulGrad-ExpertDown-dW", ffn, expertTok, hidden, 0.8)
			b.vector("SiLUGrad", fmt.Sprintf("e%d", expertTok*ffn), expertTok*ffn, 2, 2, 0.12, op.PingPongFreeIndep)
			b.matMul("MatMulGrad-ExpertUp-dX", expertTok, ffn, hidden, 0.8)
			b.matMul("MatMulGrad-ExpertUp-dW", hidden, expertTok, ffn, 0.8)
			b.comm("AllToAll-CombineGrad", 900)
			b.idle(120 + 100*b.rng.Float64())
			b.matMul("MatMulGrad-AttnOut-dX", tok, hidden, hidden, 0.8)
			b.matMul("MatMulGrad-AttnOut-dW", hidden, tok, hidden, 0.8)
			attn := 32 * tok * tok / 4
			b.vector("SoftMaxGrad", fmt.Sprintf("a%d", attn), attn, 2, 0.6, 0.1, op.PingPongFreeDep)
			b.matMul("MatMulGrad-QKV-dX", tok, 3*hidden, hidden, 0.8)
			b.matMul("MatMulGrad-QKV-dW", hidden, tok, 3*hidden, 0.8)
			b.vector("RMSNormGrad", shape, tok*hidden, 2, 3, 0.2, op.PingPongFreeDep)
			for i := 0; i < 8; i++ {
				b.tiny(tinyNames[b.rng.Intn(len(tinyNames))])
			}
		}
	}
	// Optimizer over local expert + attention parameters.
	params := (hidden*(4*hidden) + 3*hidden*ffn/experts*topK) / 8
	for l := 0; l < layers; l++ {
		b.vector("AdamApplyOne", fmt.Sprintf("l%d", l%4), params, 3, 1, 0.08, op.PingPongFreeIndep)
		b.comm("AllReduce-Grad", 1200)
		b.tiny("Mul")
	}
	b.idle(400)
	return b.model("Mixtral-MoE")
}
