// Package workload builds synthetic per-iteration operator traces for
// the deep-learning models the paper evaluates: GPT-3, BERT, ResNet-50,
// ResNet-152, VGG19, ViT, AlexNet, ShuffleNetV2+, DeiT-small, and a
// host-bound Llama2 inference step (Sect. 8.4).
//
// The traces stand in for real model executions captured by the CANN
// profiler: the DVFS pipeline only consumes the operator sequence with
// per-operator timeline parameters, so a trace with a realistic mix of
// compute-bound cube operators, memory-bound vector operators, tiny
// dispatch-dominated operators, AICPU/communication operators and idle
// gaps exercises exactly the same code paths as a hardware capture.
// Mirroring the paper's measurements, a majority of operators are
// shorter than 20 µs yet contribute ~1% of total time (Sect. 7.2), and
// a GPT-3 training iteration contains roughly 18,000 operators
// (Sect. 7.4).
package workload

import (
	"fmt"
	"math/rand"

	"npudvfs/internal/op"
)

// Chip-wide execution-rate constants used to convert operator shapes
// into timeline parameters. They describe the same class of hardware
// as npu.Default(): a many-core accelerator with wide cube (matrix)
// and vector units.
const (
	// CubeMACsPerCycle is chip-wide fp16 multiply-accumulates per
	// core cycle across all AICores.
	CubeMACsPerCycle = 524288
	// VecElemsPerCycle is chip-wide vector-lane elements per cycle.
	VecElemsPerCycle = 8192
	// BytesPerElem is the fp16 element size.
	BytesPerElem = 2
)

// Model is a named workload: the operator sequence of one training
// iteration (or one inference step).
type Model struct {
	Name  string
	Trace []op.Spec
}

// Validate checks every spec in the trace.
func (m *Model) Validate() error {
	for i := range m.Trace {
		if err := m.Trace[i].Validate(); err != nil {
			return fmt.Errorf("workload %s: entry %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// Ops returns the number of trace entries.
func (m *Model) Ops() int { return len(m.Trace) }

// builder accumulates a trace with deterministic pseudo-random shape
// variety.
type builder struct {
	trace []op.Spec
	rng   *rand.Rand
}

func newBuilder(seed int64) *builder {
	return &builder{rng: rand.New(rand.NewSource(seed))}
}

func (b *builder) add(s op.Spec) { b.trace = append(b.trace, s) }

// matMul appends a cube matrix multiply C[m,n] = A[m,k] * B[k,n].
// Large matmuls are compute-bound: their core-cycle term dominates the
// Ld/St terms, so they are frequency-sensitive (HFC material).
func (b *builder) matMul(name string, m, k, n int, l2Hit float64) {
	blocks := 8
	macs := float64(m) * float64(k) * float64(n)
	loadB := float64(m*k+k*n) * BytesPerElem
	storeB := float64(m*n) * BytesPerElem
	b.add(op.Spec{
		Name:        name,
		Shape:       fmt.Sprintf("%dx%dx%d", m, k, n),
		Class:       op.Compute,
		Scenario:    op.PingPongIndep,
		Blocks:      blocks,
		LoadBytes:   loadB / float64(blocks),
		StoreBytes:  storeB / float64(blocks),
		CoreCycles:  macs / CubeMACsPerCycle / float64(blocks),
		CorePipe:    op.Cube,
		L2Hit:       l2Hit,
		PrePostTime: 2,
	})
}

// conv2d appends a cube convolution described by its MAC count and
// activation/weight traffic.
func (b *builder) conv2d(name string, batch, inC, outC, outH, outW, kh, kw int, l2Hit float64) {
	blocks := 8
	macs := float64(batch) * float64(outC) * float64(outH) * float64(outW) * float64(inC) * float64(kh) * float64(kw)
	loadB := (float64(batch)*float64(inC)*float64(outH+kh)*float64(outW+kw) +
		float64(outC)*float64(inC)*float64(kh)*float64(kw)) * BytesPerElem
	storeB := float64(batch) * float64(outC) * float64(outH) * float64(outW) * BytesPerElem
	b.add(op.Spec{
		Name:        name,
		Shape:       fmt.Sprintf("b%dc%d-%dx%dx%dk%d", batch, inC, outC, outH, outW, kh),
		Class:       op.Compute,
		Scenario:    op.PingPongIndep,
		Blocks:      blocks,
		LoadBytes:   loadB / float64(blocks),
		StoreBytes:  storeB / float64(blocks),
		CoreCycles:  macs / CubeMACsPerCycle / float64(blocks),
		CorePipe:    op.Cube,
		L2Hit:       l2Hit,
		PrePostTime: 2,
	})
}

// vector appends an element-wise/reduction vector operator over elems
// elements with the given number of input tensors. intensity scales
// core cycles per element (1 = one vector-lane pass). Low L2 hit rates
// make these memory-bound and frequency-insensitive (LFC material).
func (b *builder) vector(name, shape string, elems, inputs int, intensity, l2Hit float64, sc op.Scenario) {
	blocks := 6
	loadB := float64(elems*inputs) * BytesPerElem
	storeB := float64(elems) * BytesPerElem
	b.add(op.Spec{
		Name:        name,
		Shape:       shape,
		Class:       op.Compute,
		Scenario:    sc,
		Blocks:      blocks,
		LoadBytes:   loadB / float64(blocks),
		StoreBytes:  storeB / float64(blocks),
		CoreCycles:  float64(elems) * intensity / VecElemsPerCycle / float64(blocks),
		CorePipe:    op.Vector,
		L2Hit:       l2Hit,
		PrePostTime: 1.5,
	})
}

// tiny appends a dispatch-dominated operator of a few microseconds:
// the sub-20 µs population that is 58.3% of operators but ~0.9% of
// execution time. Pre/post processing dominates, so the summed pipe
// ratios fall below 1 and the classifier marks it no-pipeline bound.
func (b *builder) tiny(name string) {
	// Shapes are quantized to a few buckets so that, as in real
	// captures, the same (type, shape) key recurs many times and one
	// fitted model covers all its instances.
	sizes := [...]int{2048, 4096, 8192, 16384}
	idx := b.rng.Intn(len(sizes))
	elems := sizes[idx]
	b.add(op.Spec{
		Name:        name,
		Shape:       fmt.Sprintf("e%d", elems),
		Class:       op.Compute,
		Scenario:    op.PingPongFreeIndep,
		Blocks:      1,
		LoadBytes:   float64(elems * BytesPerElem),
		StoreBytes:  float64(elems * BytesPerElem),
		CoreCycles:  float64(elems) / VecElemsPerCycle,
		CorePipe:    op.Scalar,
		L2Hit:       0.9,
		PrePostTime: 3 + 1.5*float64(idx),
	})
}

// latencyBound appends a mid-size operator without PingPong whose
// pipeline arrangement leaves every pipe under 80% utilized.
func (b *builder) latencyBound(name, shape string, elems int, l2Hit float64) {
	blocks := 4
	loadB := float64(elems) * BytesPerElem
	storeB := float64(elems) * BytesPerElem
	b.add(op.Spec{
		Name:        name,
		Shape:       shape,
		Class:       op.Compute,
		Scenario:    op.PingPongFreeDep,
		Blocks:      blocks,
		LoadBytes:   loadB / float64(blocks),
		StoreBytes:  storeB / float64(blocks),
		CoreCycles:  float64(elems) * 1.2 / VecElemsPerCycle / float64(blocks),
		CorePipe:    op.Vector,
		L2Hit:       l2Hit,
		PrePostTime: 1,
	})
}

func (b *builder) comm(name string, micros float64) {
	b.add(op.Spec{Name: name, Class: op.Communication, FixedTime: micros})
}

func (b *builder) aicpu(name string, micros float64) {
	b.add(op.Spec{Name: name, Class: op.AICPU, FixedTime: micros})
}

func (b *builder) idle(micros float64) {
	b.add(op.Spec{Name: "idle", Class: op.Idle, FixedTime: micros})
}

// model wraps the accumulated trace.
func (b *builder) model(name string) *Model {
	return &Model{Name: name, Trace: b.trace}
}
