package workload

import (
	"testing"

	"npudvfs/internal/npu"
	"npudvfs/internal/op"
)

func allModels() []*Model {
	return append(PerfEvalModels(), GPT3(), ResNet152(), Llama2Inference())
}

func TestAllModelsValidate(t *testing.T) {
	for _, m := range allModels() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestModelsDeterministic(t *testing.T) {
	a, b := GPT3(), GPT3()
	if a.Ops() != b.Ops() {
		t.Fatalf("op counts differ: %d vs %d", a.Ops(), b.Ops())
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace entry %d differs between builds", i)
		}
	}
}

func TestGPT3Scale(t *testing.T) {
	m := GPT3()
	if m.Ops() < 15000 || m.Ops() > 22000 {
		t.Errorf("GPT3 ops = %d, want ~18,000 (Sect. 7.4)", m.Ops())
	}
	chip := npu.Default()
	total := 0.0
	for i := range m.Trace {
		total += chip.Time(&m.Trace[i], 1800)
	}
	if sec := total / 1e6; sec < 4 || sec > 20 {
		t.Errorf("GPT3 iteration = %.2f s at 1800 MHz, want multi-second scale", sec)
	}
}

func TestTinyOperatorPopulation(t *testing.T) {
	// Sect. 7.2: the majority of operators are very short but
	// contribute ~1% of execution time. Verify the shape on GPT-3.
	chip := npu.Default()
	m := GPT3()
	var total, tinyTime float64
	tiny, compute := 0, 0
	for i := range m.Trace {
		s := &m.Trace[i]
		d := chip.Time(s, 1800)
		total += d
		if s.Class != op.Compute {
			continue
		}
		compute++
		if d < 20 {
			tiny++
			tinyTime += d
		}
	}
	frac := float64(tiny) / float64(compute)
	if frac < 0.4 || frac > 0.75 {
		t.Errorf("tiny-op fraction = %.2f, want around 0.58", frac)
	}
	if share := tinyTime / total; share > 0.05 {
		t.Errorf("tiny-op time share = %.3f, want ~0.01", share)
	}
}

func TestShuffleNetOperatorCount(t *testing.T) {
	m := ShuffleNetV2Plus()
	compute := 0
	for i := range m.Trace {
		if m.Trace[i].Class == op.Compute {
			compute++
		}
	}
	if compute < 3000 || compute > 5500 {
		t.Errorf("ShuffleNetV2Plus compute ops = %d, want ~4,343", compute)
	}
}

func TestModelsContainAllClasses(t *testing.T) {
	for _, m := range []*Model{GPT3(), BERT(), ResNet50()} {
		seen := map[op.Class]bool{}
		for i := range m.Trace {
			seen[m.Trace[i].Class] = true
		}
		for _, c := range []op.Class{op.Compute, op.AICPU, op.Communication, op.Idle} {
			if !seen[c] {
				t.Errorf("%s: no %v entries", m.Name, c)
			}
		}
	}
}

func TestModelsContainBothBoundKinds(t *testing.T) {
	// The Table 3 training models need both compute-bound (HFC) and
	// memory-bound (LFC) operators for DVFS to have anything to
	// exploit. (ShuffleNet and host-bound inference legitimately lack
	// cube-bound work.)
	chip := npu.Default()
	for _, m := range []*Model{GPT3(), BERT(), ResNet50(), ResNet152()} {
		cube, mem := false, false
		for i := range m.Trace {
			s := &m.Trace[i]
			if s.Class != op.Compute {
				continue
			}
			r := chip.Ratios(s, 1800)
			if r[op.Cube] > 0.5 {
				cube = true
			}
			if r[op.MTE2] > 0.6 || r[op.MTE3] > 0.6 {
				mem = true
			}
		}
		if !cube {
			t.Errorf("%s: no compute-bound operators", m.Name)
		}
		if !mem {
			t.Errorf("%s: no memory-bound operators", m.Name)
		}
	}
}

func TestRepresentativeOpsSpanPaperRange(t *testing.T) {
	chip := npu.Default()
	ops := RepresentativeOps()
	if len(ops) != 5 {
		t.Fatalf("got %d representative ops, want 5", len(ops))
	}
	for i := range ops {
		s := &ops[i]
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		d := chip.Time(s, 1500)
		if d < 20 || d > 500 {
			t.Errorf("%s: %g µs at 1500 MHz, want within the 20-300 µs band (tolerance to 500)", s.Name, d)
		}
	}
	if ops[0].Name != "Add" || ops[4].Name != "BNTrainingUpdate" {
		t.Error("representative op names/order changed")
	}
}

func TestLlama2InferenceHostBound(t *testing.T) {
	chip := npu.Default()
	m := Llama2Inference()
	var idle, total float64
	for i := range m.Trace {
		d := chip.Time(&m.Trace[i], 1800)
		total += d
		if m.Trace[i].Class == op.Idle {
			idle += d
		}
	}
	if frac := idle / total; frac < 0.25 {
		t.Errorf("idle fraction = %.2f; inference trace must be host-bound (Sect. 8.4)", frac)
	}
	// Compute ops must be overwhelmingly memory-bound (weight
	// streaming), so the whole step tolerates low frequency.
	at1800, at1300 := 0.0, 0.0
	for i := range m.Trace {
		at1800 += chip.Time(&m.Trace[i], 1800)
		at1300 += chip.Time(&m.Trace[i], 1300)
	}
	if slowdown := at1300/at1800 - 1; slowdown > 0.08 {
		t.Errorf("1300 MHz slowdown = %.3f, want small for host-bound inference", slowdown)
	}
}

func TestMicroOpRepeats(t *testing.T) {
	m := MicroOp(SoftmaxOp(), 7)
	if m.Ops() != 7 {
		t.Fatalf("MicroOp ops = %d, want 7", m.Ops())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MicroOp(TanhOp(), 3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerfEvalModelsRoster(t *testing.T) {
	models := PerfEvalModels()
	if len(models) != 7 {
		t.Fatalf("got %d perf-eval models, want 7", len(models))
	}
	want := map[string]bool{
		"Resnet50": true, "Vit_base": true, "BERT": true, "Deit_small": true,
		"AlexNet": true, "ShufflenetV2plus": true, "VGG19": true,
	}
	for _, m := range models {
		if !want[m.Name] {
			t.Errorf("unexpected model %q", m.Name)
		}
	}
}

func TestResNet152LongerThanResNet50(t *testing.T) {
	chip := npu.Default()
	dur := func(m *Model) float64 {
		total := 0.0
		for i := range m.Trace {
			total += chip.Time(&m.Trace[i], 1800)
		}
		return total
	}
	d50, d152 := dur(ResNet50()), dur(ResNet152())
	if d152 < 1.5*d50 {
		t.Errorf("ResNet152 (%.1f ms) should be ~2x ResNet50 (%.1f ms)", d152/1000, d50/1000)
	}
}

func TestMixtralMoEShape(t *testing.T) {
	chip := npu.Default()
	m := MixtralMoE()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var total, insens float64
	comm := 0
	for i := range m.Trace {
		s := &m.Trace[i]
		d := chip.Time(s, 1800)
		total += d
		if s.Class == op.Communication {
			comm++
			insens += d
		}
		if s.Class == op.Idle || s.Class == op.AICPU {
			insens += d
		}
	}
	if comm < 50 {
		t.Errorf("MoE trace has only %d communication ops; AllToAll should dominate", comm)
	}
	// The MoE non-compute share must be substantial — the property
	// that makes MoE a distinctive DVFS subject.
	if frac := insens / total; frac < 0.10 {
		t.Errorf("non-compute share = %.2f, want > 10%%", frac)
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("BERT"); err != nil {
		t.Error("lookup should be case-insensitive")
	}
}
