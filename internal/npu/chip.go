// Package npu simulates the execution timing of AI operators on an
// accelerator with the memory hierarchy of Fig. 2: an L1 cache inside
// each AICore (core frequency domain), a shared L2 cache and HBM
// (uncore domain). It implements the paper's white-box timeline
// analysis (Sect. 4.1-4.2) exactly: the cycle count of an operator is
// computed from Eqs. 4-8 as a function of the core frequency, and the
// per-pipeline busy time is accounted so the profiler can report the
// utilization ratios that drive bottleneck classification (Sect. 6.1).
//
// Unit conventions: frequency in MHz, time in microseconds, data in
// bytes, bandwidth in bytes per microsecond. A frequency in MHz is
// numerically cycles per microsecond, so Cycles = f * T needs no
// conversion constants.
package npu

import (
	"fmt"
	"math"

	"npudvfs/internal/op"
	"npudvfs/internal/vf"
)

// Chip holds the hardware parameters of the simulated accelerator.
type Chip struct {
	// Name labels the configuration in reports.
	Name string
	// Cores is core_num in Eq. 1: the number of AICores.
	Cores int
	// CLoad and CStore are the hardware constant C of Eq. 1 for the
	// move-in and move-out paths: bytes transferred per core cycle
	// per core (bus port width).
	CLoad, CStore float64
	// BWL2 and BWHBM are the peak uncore bandwidths in bytes/µs of
	// the L2 cache and HBM. An operator's effective BW_uncore
	// interpolates between them by its L2 hit rate (Sect. 4.1).
	BWL2, BWHBM float64
	// T0 is the fixed time overhead of a memory access in µs:
	// initiation of the operation, signal propagation, etc. (Eq. 3).
	T0 float64
	// Curve is the firmware voltage-frequency table.
	Curve *vf.Curve
}

// GBs converts a bandwidth in GB/s to the package convention bytes/µs.
func GBs(gbPerSec float64) float64 { return gbPerSec * 1000 }

// Default returns the reference chip configuration used by all paper
// reproduction experiments. The parameters are chosen so that operator
// saturation frequencies f_s (Eq. 2) fall below, inside and above the
// 1000-1800 MHz DVFS window depending on each operator's L2 hit rate,
// which is what produces the one-to-five-segment piecewise-linear
// performance curves of Sect. 4.3.
func Default() *Chip {
	return &Chip{
		Name:   "sim-npu",
		Cores:  32,
		CLoad:  64,
		CStore: 64,
		BWL2:   GBs(4000),
		BWHBM:  GBs(1200),
		T0:     0.2,
		Curve:  vf.Ascend(),
	}
}

// Validate checks the chip parameters.
func (c *Chip) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("npu: Cores = %d, must be positive", c.Cores)
	case c.CLoad <= 0 || c.CStore <= 0:
		return fmt.Errorf("npu: port widths must be positive (CLoad=%g, CStore=%g)", c.CLoad, c.CStore)
	case c.BWL2 <= 0 || c.BWHBM <= 0:
		return fmt.Errorf("npu: bandwidths must be positive (BWL2=%g, BWHBM=%g)", c.BWL2, c.BWHBM)
	case c.T0 < 0:
		return fmt.Errorf("npu: T0 = %g, must be non-negative", c.T0)
	case c.Curve == nil:
		return fmt.Errorf("npu: nil voltage-frequency curve")
	}
	return nil
}

// BWUncore returns the effective peak uncore bandwidth in bytes/µs for
// an operator with the given L2 hit rate.
func (c *Chip) BWUncore(l2Hit float64) float64 {
	return l2Hit*c.BWL2 + (1-l2Hit)*c.BWHBM
}

// WithUncoreScale returns a copy of the chip whose L2 and HBM
// bandwidths are scaled by the given factor, modeling an uncore
// domain running at scale x its nominal frequency. The platform the
// paper measures cannot tune the uncore (Sect. 8.2); this hook
// supports the what-if study of that future capability.
func (c *Chip) WithUncoreScale(scale float64) *Chip {
	scaled := *c
	scaled.BWL2 *= scale
	scaled.BWHBM *= scale
	return &scaled
}

// Throughput returns the Ld or St throughput in bytes/µs at core
// frequency fMHz, per Eq. 1: Tp(f) = min(C*f*core_num, BW_uncore).
func (c *Chip) Throughput(portC, l2Hit, fMHz float64) float64 {
	return math.Min(portC*fMHz*float64(c.Cores), c.BWUncore(l2Hit))
}

// SaturationMHz returns f_s of Eq. 2, the frequency at which the core
// side of the transfer path saturates the uncore bandwidth.
func (c *Chip) SaturationMHz(portC, l2Hit float64) float64 {
	return c.BWUncore(l2Hit) / (portC * float64(c.Cores))
}

// transferCycles implements Eq. 4: the core-domain cycles to move m
// bytes at frequency fMHz, including the fixed overhead T0:
//
//	Cycle(f) = m * max(f/BW_uncore, 1/(C*core_num)) + T0*f
//
// The first branch is active above the saturation frequency (uncore
// bandwidth limited, stall cycles grow linearly with f); the second
// below it (core-side port limited, constant cycles).
func (c *Chip) transferCycles(m, portC, l2Hit, fMHz float64) float64 {
	//lint:allow floateq exact sentinel: zero bytes moved short-circuits to zero cycles
	if m == 0 {
		return 0
	}
	perByte := math.Max(fMHz/c.BWUncore(l2Hit), 1/(portC*float64(c.Cores)))
	return m*perByte + c.T0*fMHz
}

// LdCycles returns Cycle(Ld) of Eq. 4 for one block of the operator.
func (c *Chip) LdCycles(s *op.Spec, fMHz float64) float64 {
	return c.transferCycles(s.LoadBytes, c.CLoad, s.L2Hit, fMHz)
}

// StCycles returns Cycle(St) of Eq. 4 for one block of the operator.
func (c *Chip) StCycles(s *op.Spec, fMHz float64) float64 {
	return c.transferCycles(s.StoreBytes, c.CStore, s.L2Hit, fMHz)
}

// Cycles returns the total core-domain cycle count of a Compute
// operator at core frequency fMHz, per the scenario equations of
// Sect. 4.2. Panics if called for a non-Compute spec; callers iterate
// traces and must branch on Class first.
//
// With L = Cycle(Ld), S = Cycle(St), K = Cycle(core) per block and n
// blocks:
//
//	PingPongFreeIndep (Eq. 5): L + S + n*K + (n-1)*max(L, S)
//	PingPongFreeDep   (Eq. 6): n * (L + K + S)
//	PingPongIndep     (Eq. 7): L + K + S + (n-1)*max(L, K, S)
//	PingPongDep       (Eq. 8): L + K + S + (n-1)*max(L+S, K)
//
// The published Eq. 8 is typeset ambiguously; we implement the reading
// consistent with its timeline (Fig. 8): Ld and St serialize with each
// other while double buffering hides the core computation, so the
// steady-state per-block period is max(L+S, K). All four forms are
// compositions of max() and non-negative linear functions of f, hence
// convex piecewise-linear with increasing slope (Sect. 4.2.5), and
// Eq. 8 is bounded by Eq. 7 (full overlap) below and Eq. 6 (no
// overlap) above.
func (c *Chip) Cycles(s *op.Spec, fMHz float64) float64 {
	if s.Class != op.Compute {
		panic(fmt.Sprintf("npu: Cycles called for %v operator %s", s.Class, s.Key()))
	}
	l := c.LdCycles(s, fMHz)
	st := c.StCycles(s, fMHz)
	k := s.CoreCycles
	n := float64(s.Blocks)
	switch s.Scenario {
	case op.PingPongFreeIndep:
		return l + st + n*k + (n-1)*math.Max(l, st)
	case op.PingPongFreeDep:
		return n * (l + k + st)
	case op.PingPongIndep:
		return l + k + st + (n-1)*math.Max(l, math.Max(k, st))
	case op.PingPongDep:
		return l + k + st + (n-1)*math.Max(l+st, k)
	default:
		panic(fmt.Sprintf("npu: unknown scenario %v for operator %s", s.Scenario, s.Key()))
	}
}

// Time returns the wall-clock duration in µs of one execution of the
// operator at core frequency fMHz. For Compute operators this is
// Cycle(f)/f plus the frequency-independent pre/post-processing time;
// for AICPU, Communication and Idle entries it is the fixed duration.
func (c *Chip) Time(s *op.Spec, fMHz float64) float64 {
	if s.Class != op.Compute {
		return s.FixedTime
	}
	return c.Cycles(s, fMHz)/fMHz + s.PrePostTime
}

// PipeBusy returns the busy time in µs spent in each pipeline during
// one execution of the operator at fMHz. Every block issues one Ld
// (MTE2), one St (MTE3) and one core computation on the operator's
// core pipeline, regardless of how much of that time overlaps.
func (c *Chip) PipeBusy(s *op.Spec, fMHz float64) [op.NumPipes]float64 {
	var busy [op.NumPipes]float64
	if s.Class != op.Compute {
		return busy
	}
	n := float64(s.Blocks)
	busy[op.MTE2] = n * c.LdCycles(s, fMHz) / fMHz
	busy[op.MTE3] = n * c.StCycles(s, fMHz) / fMHz
	busy[s.CorePipe] += n * s.CoreCycles / fMHz
	return busy
}

// Ratios returns the per-pipeline utilization ratios over the
// operator's wall-clock duration, the quantity the CANN profiler
// reports and Sect. 6.1 classifies on.
func (c *Chip) Ratios(s *op.Spec, fMHz float64) [op.NumPipes]float64 {
	var ratios [op.NumPipes]float64
	if s.Class != op.Compute {
		return ratios
	}
	total := c.Time(s, fMHz)
	if total <= 0 {
		return ratios
	}
	busy := c.PipeBusy(s, fMHz)
	for p := range busy {
		ratios[p] = busy[p] / total
	}
	return ratios
}
