package npu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"npudvfs/internal/op"
)

func testSpec(scenario op.Scenario) *op.Spec {
	return &op.Spec{
		Name:       "T",
		Class:      op.Compute,
		Scenario:   scenario,
		Blocks:     6,
		LoadBytes:  2 << 20,
		StoreBytes: 1 << 20,
		CoreCycles: 40000,
		CorePipe:   op.Vector,
		L2Hit:      0.5,
	}
}

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

func TestValidateRejectsBadChips(t *testing.T) {
	mutations := []func(*Chip){
		func(c *Chip) { c.Cores = 0 },
		func(c *Chip) { c.CLoad = 0 },
		func(c *Chip) { c.CStore = -1 },
		func(c *Chip) { c.BWL2 = 0 },
		func(c *Chip) { c.BWHBM = -5 },
		func(c *Chip) { c.T0 = -0.1 },
		func(c *Chip) { c.Curve = nil },
	}
	for i, mut := range mutations {
		c := Default()
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() = nil, want error", i)
		}
	}
}

// Throughput must rise linearly with f until the uncore bandwidth
// saturates, then stay flat (Fig. 3(a), Eq. 1).
func TestThroughputSaturates(t *testing.T) {
	c := Default()
	const l2Hit = 0.0 // pure HBM: saturation below fmin
	fs := c.SaturationMHz(c.CLoad, l2Hit)
	if fs >= 1000 {
		t.Fatalf("test premise: HBM saturation %g MHz should be below 1000", fs)
	}
	for _, f := range c.Curve.Grid() {
		tp := c.Throughput(c.CLoad, l2Hit, float64(f))
		if tp != c.BWUncore(l2Hit) {
			t.Errorf("Throughput(%g MHz) = %g, want saturated %g", f, tp, c.BWUncore(l2Hit))
		}
	}
	// Pure L2: saturation above fmax, so throughput scales with f.
	fsL2 := c.SaturationMHz(c.CLoad, 1.0)
	if fsL2 <= 1800 {
		t.Fatalf("test premise: L2 saturation %g MHz should be above 1800", fsL2)
	}
	tp1000 := c.Throughput(c.CLoad, 1.0, 1000)
	tp1800 := c.Throughput(c.CLoad, 1.0, 1800)
	if math.Abs(tp1800/tp1000-1.8) > 1e-9 {
		t.Errorf("unsaturated throughput not linear in f: %g/%g", tp1800, tp1000)
	}
}

func TestSaturationMatchesThroughputBreak(t *testing.T) {
	c := Default()
	fs := c.SaturationMHz(c.CLoad, 0.5)
	below := c.Throughput(c.CLoad, 0.5, fs*0.99)
	above := c.Throughput(c.CLoad, 0.5, fs*1.01)
	bw := c.BWUncore(0.5)
	if below >= bw {
		t.Errorf("below f_s throughput %g should be < BW %g", below, bw)
	}
	if above != bw {
		t.Errorf("above f_s throughput %g should equal BW %g", above, bw)
	}
}

// Transfer cycles (Eq. 4) are constant below f_s (apart from the T0*f
// term) and grow linearly with slope M/BW above it (Fig. 3(b)).
func TestTransferCyclesShape(t *testing.T) {
	c := Default()
	c.T0 = 0 // isolate the max() term
	s := testSpec(op.PingPongFreeIndep)
	s.L2Hit = 0.5
	fs := c.SaturationMHz(c.CLoad, s.L2Hit)
	if fs < 1100 || fs > 1700 {
		t.Fatalf("test premise: f_s = %g MHz should fall inside the grid", fs)
	}
	lo1, lo2 := c.LdCycles(s, 1000), c.LdCycles(s, fs-1)
	if math.Abs(lo1-lo2) > 1e-6 {
		t.Errorf("cycles below f_s not constant: %g vs %g", lo1, lo2)
	}
	hi1, hi2 := c.LdCycles(s, fs+50), c.LdCycles(s, fs+100)
	wantSlope := s.LoadBytes / c.BWUncore(s.L2Hit)
	gotSlope := (hi2 - hi1) / 50
	if math.Abs(gotSlope-wantSlope)/wantSlope > 1e-9 {
		t.Errorf("cycle slope above f_s = %g, want %g", gotSlope, wantSlope)
	}
}

func TestZeroVolumeTransfersCostNothing(t *testing.T) {
	c := Default()
	s := testSpec(op.PingPongIndep)
	s.LoadBytes = 0
	if got := c.LdCycles(s, 1500); got != 0 {
		t.Errorf("LdCycles with zero volume = %g, want 0", got)
	}
}

// The four scenario formulas must order sensibly: full overlap
// (PingPongIndep) <= partial overlap (PingPongDep) <= no overlap with
// parallel Ld/St (PingPongFreeIndep handles mid intervals with max) and
// all <= fully serial (PingPongFreeDep).
func TestScenarioOrdering(t *testing.T) {
	c := Default()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := testSpec(op.PingPongFreeIndep)
		s.Blocks = 1 + rng.Intn(16)
		s.LoadBytes = float64(1+rng.Intn(1<<22)) + 1
		s.StoreBytes = float64(1 + rng.Intn(1<<22))
		s.CoreCycles = float64(1 + rng.Intn(200000))
		s.L2Hit = rng.Float64()
		f := 1000 + rng.Float64()*800
		cyc := func(sc op.Scenario) float64 {
			s2 := *s
			s2.Scenario = sc
			return c.Cycles(&s2, f)
		}
		ppIndep := cyc(op.PingPongIndep)
		ppDep := cyc(op.PingPongDep)
		serialIndep := cyc(op.PingPongFreeIndep)
		serialDep := cyc(op.PingPongFreeDep)
		const eps = 1e-9
		if ppIndep > ppDep+eps {
			t.Fatalf("trial %d: PingPongIndep %g > PingPongDep %g", trial, ppIndep, ppDep)
		}
		if ppDep > serialDep+eps {
			t.Fatalf("trial %d: PingPongDep %g > PingPongFreeDep %g", trial, ppDep, serialDep)
		}
		if serialIndep > serialDep+eps {
			t.Fatalf("trial %d: PingPongFreeIndep %g > PingPongFreeDep %g", trial, serialIndep, serialDep)
		}
		if ppIndep > serialIndep+eps {
			t.Fatalf("trial %d: PingPongIndep %g > PingPongFreeIndep %g", trial, ppIndep, serialIndep)
		}
	}
}

// Sect. 4.2.5: in every scenario the cycle count is a convex function
// of frequency with non-decreasing slope. We verify discrete convexity
// (second differences >= 0) and monotonicity on a fine frequency grid.
func TestCyclesConvexIncreasing(t *testing.T) {
	c := Default()
	rng := rand.New(rand.NewSource(11))
	scenarios := []op.Scenario{
		op.PingPongFreeIndep, op.PingPongFreeDep, op.PingPongIndep, op.PingPongDep,
	}
	for trial := 0; trial < 100; trial++ {
		for _, sc := range scenarios {
			s := testSpec(sc)
			s.Blocks = 1 + rng.Intn(12)
			s.LoadBytes = float64(rng.Intn(1 << 22))
			s.StoreBytes = float64(rng.Intn(1 << 22))
			s.CoreCycles = float64(1 + rng.Intn(100000))
			s.L2Hit = rng.Float64()
			const step = 5.0
			var prev, prevDelta float64
			for i, f := 0, 1000.0; f <= 1800; i, f = i+1, f+step {
				cyc := c.Cycles(s, f)
				if i > 0 {
					delta := cyc - prev
					if delta < -1e-6 {
						t.Fatalf("%v trial %d: cycles decreased at %g MHz (%g)", sc, trial, f, delta)
					}
					if i > 1 && delta < prevDelta-1e-6 {
						t.Fatalf("%v trial %d: slope decreased at %g MHz (%g < %g)",
							sc, trial, f, delta, prevDelta)
					}
					prevDelta = delta
				}
				prev = cyc
			}
		}
	}
}

// Time(f) need not be monotone, but for a purely compute-bound
// operator it must scale as 1/f exactly.
func TestComputeBoundTimeScalesInverse(t *testing.T) {
	c := Default()
	s := testSpec(op.PingPongIndep)
	s.LoadBytes, s.StoreBytes = 0, 0
	s.PrePostTime = 0
	t1 := c.Time(s, 1000)
	t18 := c.Time(s, 1800)
	if math.Abs(t1/t18-1.8) > 1e-9 {
		t.Errorf("compute-bound time ratio = %g, want 1.8", t1/t18)
	}
}

func TestNonComputeTimeIgnoresFrequency(t *testing.T) {
	c := Default()
	s := &op.Spec{Name: "AllReduce", Class: op.Communication, FixedTime: 321}
	if c.Time(s, 1000) != 321 || c.Time(s, 1800) != 321 {
		t.Error("non-compute op duration must not depend on frequency")
	}
	if r := c.Ratios(s, 1500); r != ([op.NumPipes]float64{}) {
		t.Errorf("non-compute ratios = %v, want all zero", r)
	}
}

func TestCyclesPanicsOnNonCompute(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycles on non-compute spec did not panic")
		}
	}()
	c := Default()
	c.Cycles(&op.Spec{Name: "x", Class: op.Idle, FixedTime: 1}, 1500)
}

// Ratios are in [0, 1], and per-pipeline busy time never exceeds the
// wall duration of the operator.
func TestQuickRatiosBounded(t *testing.T) {
	c := Default()
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	prop := func(blocks uint8, load, store uint32, coreCycles uint32, l2 float64, fsel uint8) bool {
		s := testSpec(op.Scenario(fsel % 4))
		s.Blocks = 1 + int(blocks%16)
		s.LoadBytes = float64(load % (1 << 23))
		s.StoreBytes = float64(store % (1 << 23))
		s.CoreCycles = float64(1 + coreCycles%300000)
		s.L2Hit = math.Abs(l2) - math.Floor(math.Abs(l2)) // into [0,1)
		f := float64(c.Curve.Grid()[int(fsel)%9])
		ratios := c.Ratios(s, f)
		for _, r := range ratios {
			if r < 0 || r > 1+1e-9 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// The core-pipe ratio of a compute-dominated op approaches 1, and the
// MTE2 ratio of a load-dominated op approaches 1.
func TestRatiosIdentifyBottleneck(t *testing.T) {
	c := Default()
	comp := testSpec(op.PingPongIndep)
	comp.LoadBytes, comp.StoreBytes = 1024, 1024
	comp.CoreCycles = 1e6
	comp.Blocks = 16
	r := c.Ratios(comp, 1500)
	if r[op.Vector] < 0.9 {
		t.Errorf("compute-dominated op: vector ratio = %g, want > 0.9", r[op.Vector])
	}
	mem := testSpec(op.PingPongIndep)
	mem.LoadBytes = 8 << 20
	mem.StoreBytes = 1024
	mem.CoreCycles = 100
	mem.Blocks = 16
	mem.L2Hit = 0
	r = c.Ratios(mem, 1500)
	if r[op.MTE2] < 0.9 {
		t.Errorf("load-dominated op: mte2 ratio = %g, want > 0.9", r[op.MTE2])
	}
	if r[op.Vector] > 0.1 {
		t.Errorf("load-dominated op: vector ratio = %g, want < 0.1", r[op.Vector])
	}
}

func TestGBs(t *testing.T) {
	if GBs(1.2) != 1200 {
		t.Errorf("GBs(1.2) = %g bytes/µs, want 1200", GBs(1.2))
	}
}

func TestWithUncoreScale(t *testing.T) {
	c := Default()
	slow := c.WithUncoreScale(0.8)
	if slow.BWL2 != 0.8*c.BWL2 || slow.BWHBM != 0.8*c.BWHBM {
		t.Fatalf("bandwidths not scaled: %g %g", slow.BWL2, slow.BWHBM)
	}
	// The original is untouched.
	if c.BWL2 != Default().BWL2 {
		t.Error("WithUncoreScale mutated the receiver")
	}
	// A memory-bound op slows down; a compute-bound op does not.
	mem := testSpec(op.PingPongIndep)
	mem.LoadBytes, mem.StoreBytes, mem.CoreCycles = 8<<20, 8<<20, 100
	mem.L2Hit = 0
	if slow.Time(mem, 1500) <= c.Time(mem, 1500) {
		t.Error("memory-bound op should slow down on a downclocked uncore")
	}
	comp := testSpec(op.PingPongIndep)
	comp.LoadBytes, comp.StoreBytes = 512, 512
	comp.CoreCycles = 1e6
	rel := math.Abs(slow.Time(comp, 1500)/c.Time(comp, 1500) - 1)
	if rel > 0.01 {
		t.Errorf("compute-bound op changed by %.3f on uncore downclock", rel)
	}
}
