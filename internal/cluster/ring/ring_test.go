package ring

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "n1", Addr: "http://127.0.0.1:7071"},
		{ID: "n2", Addr: "http://127.0.0.1:7072"},
		{ID: "n3", Addr: "http://127.0.0.1:7073"},
	}
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// The shape of a real strategy-cache key: fingerprint + config
		// hash, varied deterministically.
		out[i] = fmt.Sprintf("%064x:%016x", i*2654435761, i)
	}
	return out
}

// TestOwnerIndependentOfEnumerationOrder pins the determinism
// contract: every permutation of the node list builds a ring with
// identical ownership and an identical canonical ring file.
func TestOwnerIndependentOfEnumerationOrder(t *testing.T) {
	nodes := threeNodes()
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	ks := keys(500)

	ref, err := New(nodes, 32)
	if err != nil {
		t.Fatal(err)
	}
	refFile, err := ref.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range perms {
		shuffled := []Node{nodes[p[0]], nodes[p[1]], nodes[p[2]]}
		r, err := New(shuffled, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			if got, want := r.Owner(k).ID, ref.Owner(k).ID; got != want {
				t.Fatalf("permutation %v: owner of %q = %s, want %s", p, k, got, want)
			}
		}
		f, err := r.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f, refFile) {
			t.Fatalf("permutation %v: ring file differs:\n%s\n---\n%s", p, f, refFile)
		}
	}
}

// TestOwnerPinned freezes a few concrete assignments: any change to
// the point derivation (hash input format, tie-break, vnode loop) is a
// breaking topology change for every deployed ring file and must show
// up here.
func TestOwnerPinned(t *testing.T) {
	r, err := New(threeNodes(), 64)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, k := range keys(64) {
		want[k] = r.Owner(k).ID
	}
	// Rebuilding from the serialized file reproduces the assignments.
	f, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got := r2.Owner(k).ID; got != w {
			t.Errorf("owner of %q after file round-trip: %s, want %s", k, got, w)
		}
	}
}

func TestOwnerDistribution(t *testing.T) {
	r, err := New(threeNodes(), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	ks := keys(3000)
	for _, k := range ks {
		counts[r.Owner(k).ID]++
	}
	for _, n := range r.Nodes() {
		got := counts[n.ID]
		if got < len(ks)/10 {
			t.Errorf("node %s owns %d/%d keys; ring is badly imbalanced: %v", n.ID, got, len(ks), counts)
		}
	}
}

func TestReplicasOwnerFirstDistinct(t *testing.T) {
	r, err := New(threeNodes(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(50) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%q, 3) returned %d nodes", k, len(reps))
		}
		if reps[0].ID != r.Owner(k).ID {
			t.Errorf("Replicas(%q)[0] = %s, want owner %s", k, reps[0].ID, r.Owner(k).ID)
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n.ID] {
				t.Errorf("Replicas(%q) repeats node %s", k, n.ID)
			}
			seen[n.ID] = true
		}
	}
	if got := r.Replicas("k", 99); len(got) != 3 {
		t.Errorf("Replicas capped at node count: got %d, want 3", len(got))
	}
	if got := r.Replicas("k", 0); got != nil {
		t.Errorf("Replicas(.., 0) = %v, want nil", got)
	}
}

// TestConsistentMovementOnNodeAdd is the consistent-hashing property:
// growing the ring only moves keys to the new node — no key shuffles
// between surviving nodes.
func TestConsistentMovementOnNodeAdd(t *testing.T) {
	small, err := New(threeNodes(), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New(append(threeNodes(), Node{ID: "n4", Addr: "http://127.0.0.1:7074"}), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(2000)
	moved := 0
	for _, k := range ks {
		before, after := small.Owner(k).ID, grown.Owner(k).ID
		if before == after {
			continue
		}
		moved++
		if after != "n4" {
			t.Fatalf("key %q moved %s → %s on node add; only moves to the new node are allowed", k, before, after)
		}
	}
	if moved == 0 || moved > len(ks)/2 {
		t.Errorf("node add moved %d/%d keys; expected roughly 1/4", moved, len(ks))
	}

	// The analytic Rebalance agrees: every move targets n4, and the
	// total fraction is in the same ballpark as the empirical count.
	for _, m := range Rebalance(small, grown) {
		if m.To != "n4" {
			t.Errorf("Rebalance reports move %s → %s; only n4 may gain keyspace", m.From, m.To)
		}
	}
	frac := MovedFraction(small, grown)
	emp := float64(moved) / float64(len(ks))
	if diff := frac - emp; diff < -0.1 || diff > 0.1 {
		t.Errorf("analytic moved fraction %.3f vs empirical %.3f", frac, emp)
	}
	// Identical rings move nothing.
	if got := MovedFraction(small, small); got != 0 {
		t.Errorf("MovedFraction(r, r) = %g, want 0", got)
	}
}

func TestFileRoundTripBytes(t *testing.T) {
	r, err := New(threeNodes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("ring file not byte-stable across save/load:\n%s\n---\n%s", a, b)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, a) {
		t.Fatalf("saved file differs from Marshal output")
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"empty", nil},
		{"dup id", []Node{{ID: "a", Addr: "x"}, {ID: "a", Addr: "y"}}},
		{"empty id", []Node{{ID: "", Addr: "x"}}},
		{"no addr", []Node{{ID: "a", Addr: ""}}},
		{"bad id chars", []Node{{ID: "a b", Addr: "x"}}},
	}
	for _, c := range cases {
		if _, err := New(c.nodes, 4); err == nil {
			t.Errorf("New(%s) accepted invalid input", c.name)
		}
	}
	if _, err := Parse([]byte(`{"version": 2, "nodes": [{"id":"a","addr":"x"}]}`)); err == nil {
		t.Error("Parse accepted unknown version")
	}
	if _, err := Parse([]byte(`{"version": 1, "surprise": true}`)); err == nil {
		t.Error("Parse accepted unknown field")
	}
	// vnodes 0 in the file selects the default.
	r, err := Parse([]byte(`{"version": 1, "vnodes": 0, "nodes": [{"id":"a","addr":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("vnodes 0 resolved to %d, want default %d", r.VNodes(), DefaultVNodes)
	}
}

func TestLookup(t *testing.T) {
	r, err := New(threeNodes(), 4)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := r.Lookup("n2")
	if !ok || n.Addr != "http://127.0.0.1:7072" {
		t.Errorf("Lookup(n2) = %+v, %v", n, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup of unknown node succeeded")
	}
}
