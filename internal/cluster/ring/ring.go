// Package ring implements the deterministic consistent-hash ring that
// shards dvfsd's strategy keyspace across cluster nodes. Keys are the
// strategy-cache keys (trace fingerprint + canonical SearchSpec hash,
// traceio.CacheKey), so every resubmission of a workload lands on the
// node whose LRU cache and model bundles are already hot for it —
// horizontal scale-out compounds with, instead of defeating, the
// single-node cache wins.
//
// Determinism contract (the cluster analogue of the repo's
// byte-identical-at-any-worker-count gates): a ring is a pure function
// of its ring file. Ownership must not depend on node enumeration
// order, map iteration, or the process that built the ring — every
// peer that loads the same file answers Owner identically, and
// Marshal emits byte-identical files on every node. Virtual-node
// points are derived from SHA-256 of "ring-v1|<node-id>|<replica>",
// so adding a node moves only the keyspace arcs that the new node's
// points claim (verified by Rebalance and the package tests).
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Node is one dvfsd instance on the ring.
type Node struct {
	// ID names the node. It prefixes the node's job IDs ("n1-j00000001")
	// and must be unique on the ring; allowed characters are letters,
	// digits, '.', '_' and '-'.
	ID string `json:"id"`
	// Addr is the node's base URL, e.g. "http://127.0.0.1:7071".
	Addr string `json:"addr"`
}

// DefaultVNodes is the virtual-node count used when a ring file leaves
// vnodes unset: enough points that a 3–10 node ring balances within a
// few percent, small enough that building a ring is microseconds.
const DefaultVNodes = 64

// FileVersion is the only ring-file schema version this package reads
// and writes.
const FileVersion = 1

// File is the ring-file wire format. All peers of one cluster load the
// identical file; Marshal emits it in canonical form (nodes sorted by
// ID, stable field order) so the file is byte-identical no matter
// which node wrote it.
type File struct {
	Version int    `json:"version"`
	VNodes  int    `json:"vnodes"`
	Nodes   []Node `json:"nodes"`
}

// point is one virtual node: a position on the 64-bit hash circle
// claimed by a physical node.
type point struct {
	hash    uint64
	node    int32 // index into Ring.nodes (sorted by ID)
	replica int32
}

// Ring maps keys to owner nodes. Build one with New or Load; a Ring is
// immutable and safe for concurrent use.
type Ring struct {
	vnodes int
	nodes  []Node // sorted by ID
	points []point
	index  map[string]int // node ID → index into nodes
}

// New builds a ring over the given nodes. vnodes <= 0 selects
// DefaultVNodes. The input slice may be in any order: the ring sorts
// nodes by ID before deriving points, so enumeration order cannot leak
// into ownership.
func New(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := make([]Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	index := make(map[string]int, len(sorted))
	for i, n := range sorted {
		if err := validateID(n.ID); err != nil {
			return nil, err
		}
		if n.Addr == "" {
			return nil, fmt.Errorf("ring: node %q has no addr", n.ID)
		}
		if _, dup := index[n.ID]; dup {
			return nil, fmt.Errorf("ring: duplicate node id %q", n.ID)
		}
		index[n.ID] = i
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  sorted,
		points: make([]point, 0, len(sorted)*vnodes),
		index:  index,
	}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			h := hash64("ring-v1|" + n.ID + "|" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, node: int32(i), replica: int32(v)})
		}
	}
	// Tie-break equal hashes by (node, replica): nodes are already in
	// ID order, so the sort is a pure function of the node set.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.replica < b.replica
	})
	return r, nil
}

func validateID(id string) error {
	if id == "" {
		return fmt.Errorf("ring: node with empty id")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("ring: node id %q contains %q; allowed are letters, digits, '.', '_', '-'", id, c)
		}
	}
	return nil
}

// hash64 is the ring's point and key hash: the first 8 bytes of
// SHA-256, big-endian. SHA-256 keeps point derivation identical across
// architectures and Go versions (no hash/maphash per-process seeds).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node that owns key: the node whose first point at
// or clockwise after the key's hash position claims the arc.
func (r *Ring) Owner(key string) Node {
	return r.nodes[r.points[r.search(hash64(key))].node]
}

// ownerAt resolves the owner of an arbitrary hash position (used by
// Rebalance, which walks arc boundaries rather than keys).
func (r *Ring) ownerAt(h uint64) Node {
	return r.nodes[r.points[r.search(h)].node]
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the end of the circle.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Replicas returns up to n distinct nodes in preference order for key:
// the owner first, then the nodes whose points follow clockwise. With
// n >= Len() this is a deterministic full failover order for the key.
func (r *Ring) Replicas(key string, n int) []Node {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]Node, 0, n)
	seen := make(map[int32]bool, n)
	start := r.search(hash64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// Lookup resolves a node by ID.
func (r *Ring) Lookup(id string) (Node, bool) {
	i, ok := r.index[id]
	if !ok {
		return Node{}, false
	}
	return r.nodes[i], true
}

// Nodes returns the ring's nodes sorted by ID.
func (r *Ring) Nodes() []Node {
	out := make([]Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the virtual-node count per physical node.
func (r *Ring) VNodes() int { return r.vnodes }

// Move is one directed keyspace transfer computed by Rebalance.
type Move struct {
	From string
	To   string
	// Fraction is the share of the whole keyspace (0..1) whose
	// ownership moves From → To.
	Fraction float64
}

// Rebalance analytically compares two rings and returns the keyspace
// that changes owner, aggregated per (from, to) node pair and sorted
// by (From, To). It walks the merged arc boundaries of both rings —
// ownership is constant between adjacent points — so the result is
// exact, not sampled. A well-behaved topology change (adding one node
// to n) moves only ~1/(n+1) of the keyspace, all of it To the new
// node; anything else indicates a broken hash or tie-break.
func Rebalance(from, to *Ring) []Move {
	bounds := make([]uint64, 0, len(from.points)+len(to.points))
	for _, p := range from.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range to.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	// Deduplicate: equal boundaries delimit zero-width arcs.
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq

	type pair struct{ from, to string }
	width := make(map[pair]uint64)
	for i, b := range bounds {
		// The arc (prev, b] has constant ownership in both rings; its
		// width is b-prev, which as uint64 arithmetic also handles the
		// wrap-around arc ending at bounds[0].
		prev := bounds[(i+len(bounds)-1)%len(bounds)]
		w := b - prev
		if len(bounds) == 1 {
			// A single distinct boundary means the whole circle is one
			// arc; b-prev would be 0.
			w = ^uint64(0)
		}
		f := from.ownerAt(b)
		t := to.ownerAt(b)
		if f.ID != t.ID {
			width[pair{f.ID, t.ID}] += w
		}
	}
	moves := make([]Move, 0, len(width))
	for p, w := range width {
		moves = append(moves, Move{From: p.from, To: p.to, Fraction: float64(w) / (1 << 64)})
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].From != moves[j].From {
			return moves[i].From < moves[j].From
		}
		return moves[i].To < moves[j].To
	})
	return moves
}

// MovedFraction sums Rebalance: the total share of the keyspace whose
// owner differs between the two rings.
func MovedFraction(from, to *Ring) float64 {
	total := 0.0
	for _, m := range Rebalance(from, to) {
		total += m.Fraction
	}
	return total
}

// Parse builds a ring from ring-file bytes, rejecting unknown fields
// and schema versions so peers cannot silently disagree about the
// topology they loaded.
func Parse(data []byte) (*Ring, error) {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("ring: parsing ring file: %w", err)
	}
	if f.Version != FileVersion {
		return nil, fmt.Errorf("ring: unsupported ring file version %d (want %d)", f.Version, FileVersion)
	}
	return New(f.Nodes, f.VNodes)
}

// Load reads and parses a ring file.
func Load(path string) (*Ring, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Marshal renders the canonical ring file: version, explicit vnodes,
// nodes sorted by ID. Two rings with the same topology marshal to
// byte-identical files regardless of how either was constructed.
func (r *Ring) Marshal() ([]byte, error) {
	f := File{Version: FileVersion, VNodes: r.vnodes, Nodes: r.Nodes()}
	b, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the canonical ring file.
func (r *Ring) Save(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
