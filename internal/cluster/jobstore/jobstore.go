// Package jobstore is dvfsd's pluggable job store: the index of every
// 202-acknowledged strategy job, behind one Store interface with two
// backends. Memory preserves the original single-process behavior
// (jobs die with the daemon); FS persists every record with atomic
// tmp+rename writes and recovers them on boot, so acknowledged jobs
// survive a crash or restart (DESIGN.md §12).
//
// Both backends share the retention policy the serving layer depends
// on: live (non-terminal) jobs are never evicted — a client can always
// poll a job it submitted — while terminal jobs queue on a FIFO of
// eviction candidates and are dropped oldest-first once the store
// exceeds its capacity. Eviction is amortized O(1) per insert.
package jobstore

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
)

// Record is the stored form of one job. Records handed out by Get are
// shared snapshots: treat them as read-only (the store replaces the
// pointer wholesale on every Update, it never mutates in place).
type Record struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Workload string `json:"workload"`
	CacheKey string `json:"cache_key,omitempty"`
	// Cached marks jobs answered from the strategy cache (born
	// terminal; no search ran).
	Cached bool `json:"cached,omitempty"`
	// Request is the original submission body. Recovery re-enqueues a
	// non-terminal record by re-resolving it, so the fs backend can
	// finish jobs a crashed daemon acknowledged but never ran. Nil for
	// cache-hit jobs — there is nothing to re-run.
	Request *traceio.StrategyRequest `json:"request,omitempty"`
	Error   string                   `json:"error,omitempty"`

	QueueMillis  units.Millis `json:"queue_ms"`
	SearchMillis units.Millis `json:"search_ms"`

	// Result is set once State is done.
	Result *traceio.StrategyResponse `json:"result,omitempty"`

	// SavedUnixNano is stamped by the fs backend on each write — an
	// observability field for operators inspecting a store directory,
	// never read back into behavior.
	SavedUnixNano int64 `json:"saved_unix_nano,omitempty"`
}

// Status renders the record as the wire JobStatus.
func (r *Record) Status() *traceio.JobStatus {
	return &traceio.JobStatus{
		ID:           r.ID,
		State:        r.State,
		Workload:     r.Workload,
		Cached:       r.Cached,
		Error:        r.Error,
		QueueMillis:  r.QueueMillis,
		SearchMillis: r.SearchMillis,
		Result:       r.Result,
	}
}

// clone returns a shallow copy: scalar fields are private to the copy,
// Request/Result pointers are shared and immutable by contract (the
// same contract the strategy cache already imposes on responses).
func (r *Record) clone() *Record {
	c := *r
	return &c
}

// Store is the durable job index behind the dvfsd serving layer.
// Implementations must be safe for concurrent use.
type Store interface {
	// Add assigns the next job ID (writing it into rec.ID), persists
	// the record and returns the ID. A record added in a terminal state
	// (cache hit) is immediately an eviction candidate. A non-nil error
	// means durability is degraded, not that the job was lost: the
	// record is always serveable from memory.
	Add(rec *Record) (string, error)
	// Update persists a state transition for an existing record. The
	// first transition into a terminal state enqueues the record for
	// eviction. Updating an unknown (evicted/removed) ID is a no-op.
	Update(rec *Record) error
	// Get returns the current record snapshot. Treat it as read-only.
	Get(id string) (*Record, bool)
	// Remove forgets a job that never reached a worker (queue-full
	// rejection after the ID was assigned).
	Remove(id string)
	// Pending returns the non-terminal records recovered at open, in ID
	// order — the jobs a previous process acknowledged but never
	// finished. Memory stores have none.
	Pending() []*Record
	// Kind names the backend ("memory", "fs") for /v1/cluster.
	Kind() string
	Close() error
}

// Memory is the in-process backend: the original dvfsd job map,
// refactored behind the Store interface. It also serves as the index
// core of the FS backend, which attaches persist/unlink hooks.
type Memory struct {
	mu     sync.Mutex
	prefix string
	next   uint64
	cap    int
	m      map[string]*entry
	// terminal holds IDs that reached a terminal state, in completion
	// order; head indexes the next eviction candidate. Entries for
	// already-removed IDs are skipped lazily.
	terminal []string
	head     int

	// FS hooks; nil in pure memory mode. Called with mu held, so disk
	// writes serialize with the index they mirror.
	persist func(rec *Record) error
	unlink  func(id string)
}

type entry struct {
	rec *Record
	// noted guards the terminal FIFO against double-entry: Update may
	// be called on an already-terminal record (e.g. a re-persist), but
	// each job may occupy at most one FIFO slot.
	noted bool
}

// NewMemory returns an in-process store. capacity bounds retained jobs
// (live jobs can exceed it; see Store). idPrefix, usually
// "<node-id>-", namespaces job IDs so they are unique cluster-wide;
// "" preserves the single-node "j%08d" format.
func NewMemory(capacity int, idPrefix string) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{prefix: idPrefix, cap: capacity, m: make(map[string]*entry)}
}

func (s *Memory) Kind() string { return "memory" }

func (s *Memory) Close() error { return nil }

func (s *Memory) Pending() []*Record { return nil }

func (s *Memory) Add(rec *Record) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("%sj%08d", s.prefix, s.next)
	rec.ID = id
	e := &entry{rec: rec.clone()}
	s.m[id] = e
	if traceio.IsTerminal(rec.State) {
		e.noted = true
		s.terminal = append(s.terminal, id)
	}
	//lint:allow lockorder by-design: the fs hook persists under mu so records on disk never reorder against the index
	err := s.persistLocked(e.rec)
	//lint:allow lockorder eviction unlinks under mu for the same index/disk atomicity
	s.evictLocked()
	return id, err
}

func (s *Memory) Update(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[rec.ID]
	if !ok {
		return nil
	}
	e.rec = rec.clone()
	if traceio.IsTerminal(rec.State) && !e.noted {
		e.noted = true
		s.terminal = append(s.terminal, rec.ID)
	}
	//lint:allow lockorder by-design: the fs hook persists under mu so records on disk never reorder against the index
	err := s.persistLocked(e.rec)
	//lint:allow lockorder eviction unlinks under mu for the same index/disk atomicity
	s.evictLocked()
	return err
}

func (s *Memory) Get(id string) (*Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return nil, false
	}
	return e.rec, true
}

func (s *Memory) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return
	}
	delete(s.m, id)
	if s.unlink != nil {
		//lint:allow lockorder by-design: unlink under mu keeps the on-disk set a subset of the index
		s.unlink(id)
	}
}

func (s *Memory) persistLocked(rec *Record) error {
	if s.persist == nil {
		return nil
	}
	return s.persist(rec)
}

// evictLocked pops terminal jobs oldest-first until the store fits its
// bound; if everything is live the store grows instead. The drained
// prefix is compacted away once it dominates the slice so the FIFO's
// memory stays proportional to retained jobs.
func (s *Memory) evictLocked() {
	for len(s.m) > s.cap && s.head < len(s.terminal) {
		id := s.terminal[s.head]
		if _, ok := s.m[id]; ok {
			delete(s.m, id)
			if s.unlink != nil {
				s.unlink(id)
			}
		}
		s.head++
	}
	if s.head > 64 && s.head*2 >= len(s.terminal) {
		s.terminal = append(s.terminal[:0], s.terminal[s.head:]...)
		s.head = 0
	}
}

// len reports retained records (tests and /v1/cluster).
func (s *Memory) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// seedLocked installs a recovered record without persisting (it is
// already on disk) — FS boot path only.
func (s *Memory) seedLocked(rec *Record) {
	e := &entry{rec: rec}
	s.m[rec.ID] = e
	if traceio.IsTerminal(rec.State) {
		e.noted = true
		s.terminal = append(s.terminal, rec.ID)
	}
	if n, ok := idNumber(s.prefix, rec.ID); ok && n > s.next {
		s.next = n
	}
}

// idNumber parses the numeric suffix of a job ID carrying the given
// prefix; recovery continues the sequence past the highest ID seen so
// restarted daemons never re-issue an acknowledged ID.
func idNumber(prefix, id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, prefix)
	if !ok || len(rest) < 2 || rest[0] != 'j' {
		return 0, false
	}
	n, err := strconv.ParseUint(rest[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
