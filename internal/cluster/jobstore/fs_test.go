package jobstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"npudvfs/internal/traceio"
)

func openFS(t *testing.T, dir string, capacity int, prefix string) *FS {
	t.Helper()
	s, err := OpenFS(dir, capacity, prefix)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestFSPersistsAndReloadsRecords(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir, 16, "n1-")
	rec := &Record{
		State:    traceio.JobQueued,
		Workload: "resnet50",
		CacheKey: "abc:def",
		Request:  &traceio.StrategyRequest{Workload: "resnet50"},
	}
	id := mustAdd(t, s, rec)
	running := rec.clone()
	running.State = traceio.JobRunning
	running.QueueMillis = 12
	if err := s.Update(running); err != nil {
		t.Fatal(err)
	}

	// Reopen: the record is there, current, and pending (non-terminal).
	s2 := openFS(t, dir, 16, "n1-")
	got, ok := s2.Get(id)
	if !ok {
		t.Fatalf("record %s lost across reopen", id)
	}
	if got.State != traceio.JobRunning || got.Workload != "resnet50" || got.CacheKey != "abc:def" {
		t.Errorf("reloaded record mangled: %+v", got)
	}
	if got.Request == nil || got.Request.Workload != "resnet50" {
		t.Errorf("reloaded record lost its request: %+v", got.Request)
	}
	if got.SavedUnixNano == 0 {
		t.Error("persisted record carries no saved timestamp")
	}
	pending := s2.Pending()
	if len(pending) != 1 || pending[0].ID != id {
		t.Fatalf("Pending = %+v, want exactly %s", pending, id)
	}
	// The ID sequence continues past the recovered maximum.
	next := mustAdd(t, s2, liveRec())
	if next != "n1-j00000002" {
		t.Errorf("next ID after recovery: %s, want n1-j00000002", next)
	}
}

func TestFSTerminalRecordsSurviveAndAreNotPending(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir, 16, "")
	id := mustAdd(t, s, liveRec())
	rec, _ := s.Get(id)
	done := rec.clone()
	done.State = traceio.JobDone
	done.Result = &traceio.StrategyResponse{Workload: "resnet50"}
	if err := s.Update(done); err != nil {
		t.Fatal(err)
	}

	s2 := openFS(t, dir, 16, "")
	if got := s2.Pending(); len(got) != 0 {
		t.Fatalf("terminal record reported pending: %+v", got)
	}
	got, ok := s2.Get(id)
	if !ok || got.State != traceio.JobDone || got.Result == nil {
		t.Fatalf("terminal result not pollable after reopen: %+v (ok=%v)", got, ok)
	}
}

func TestFSEvictionDeletesFiles(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir, 2, "")
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, mustAdd(t, s, doneRec()))
	}
	files := listFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("store dir holds %d files %v, want 2", len(files), files)
	}
	for _, f := range files {
		if !strings.HasSuffix(f, ".json") {
			t.Errorf("unexpected file %s", f)
		}
	}
	for _, id := range ids[:3] {
		if _, err := os.Stat(filepath.Join(dir, id+".json")); !os.IsNotExist(err) {
			t.Errorf("evicted record %s still on disk", id)
		}
	}
	// Remove (queue-full rollback) also unlinks.
	id := mustAdd(t, s, liveRec())
	s.Remove(id)
	if _, err := os.Stat(filepath.Join(dir, id+".json")); !os.IsNotExist(err) {
		t.Errorf("removed record %s still on disk", id)
	}
}

func TestFSNoTmpFilesLeftAndStrayTmpCleaned(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir, 8, "")
	for i := 0; i < 4; i++ {
		mustAdd(t, s, doneRec())
	}
	for _, f := range listFiles(t, dir) {
		if strings.HasSuffix(f, ".tmp") {
			t.Errorf("tmp file %s left behind by atomic write", f)
		}
	}
	// A crash between write and rename leaves a .tmp; reopen removes it
	// and keeps the committed records.
	stray := filepath.Join(dir, "j00000099.json.tmp")
	if err := os.WriteFile(stray, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openFS(t, dir, 8, "")
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray .tmp not cleaned on open")
	}
	if got := s2.len(); got != 4 {
		t.Errorf("recovered %d records, want 4", got)
	}
}

func TestFSSkipsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir, 8, "")
	id := mustAdd(t, s, doneRec())
	_ = s
	// Corrupt JSON, a record whose ID disagrees with its filename, and
	// a non-record file: all skipped, none fatal, none deleted.
	if err := os.WriteFile(filepath.Join(dir, "j00000077.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign, _ := json.Marshal(&Record{ID: "other-j00000001", State: traceio.JobDone})
	if err := os.WriteFile(filepath.Join(dir, "j00000078.json"), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openFS(t, dir, 8, "")
	if got := s2.len(); got != 1 {
		t.Errorf("recovered %d records, want 1 (corrupt/foreign skipped)", got)
	}
	if _, ok := s2.Get(id); !ok {
		t.Errorf("valid record %s lost next to corrupt files", id)
	}
	if _, err := os.Stat(filepath.Join(dir, "j00000077.json")); err != nil {
		t.Error("corrupt file deleted; should be left for inspection")
	}
}

func TestFSPendingSortedByID(t *testing.T) {
	dir := t.TempDir()
	s := openFS(t, dir, 32, "")
	var want []string
	for i := 0; i < 5; i++ {
		want = append(want, mustAdd(t, s, liveRec()))
	}
	s2 := openFS(t, dir, 32, "")
	pending := s2.Pending()
	if len(pending) != len(want) {
		t.Fatalf("pending %d records, want %d", len(pending), len(want))
	}
	for i, rec := range pending {
		if rec.ID != want[i] {
			t.Errorf("pending[%d] = %s, want %s (ID order)", i, rec.ID, want[i])
		}
	}
}
