package jobstore

import (
	"fmt"
	"testing"

	"npudvfs/internal/traceio"
)

func liveRec() *Record   { return &Record{State: traceio.JobQueued} }
func doneRec() *Record   { return &Record{State: traceio.JobDone} }
func failedRec() *Record { return &Record{State: traceio.JobFailed} }

func mustAdd(t *testing.T, s Store, rec *Record) string {
	t.Helper()
	id, err := s.Add(rec)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	return id
}

// storeCases runs each retention-policy test against both backends:
// the policy is backend-independent by design.
func storeCases(t *testing.T, run func(t *testing.T, mk func(capacity int) Store)) {
	t.Run("memory", func(t *testing.T) {
		run(t, func(capacity int) Store { return NewMemory(capacity, "") })
	})
	t.Run("fs", func(t *testing.T) {
		run(t, func(capacity int) Store {
			s, err := OpenFS(t.TempDir(), capacity, "")
			if err != nil {
				t.Fatal(err)
			}
			return s
		})
	})
}

func TestStoreEvictsOldestTerminalFirst(t *testing.T) {
	storeCases(t, func(t *testing.T, mk func(int) Store) {
		s := mk(3)
		var ids []string
		for i := 0; i < 6; i++ {
			ids = append(ids, mustAdd(t, s, doneRec()))
		}
		for _, id := range ids[:3] {
			if _, ok := s.Get(id); ok {
				t.Errorf("oldest terminal job %s not evicted", id)
			}
		}
		for _, id := range ids[3:] {
			if _, ok := s.Get(id); !ok {
				t.Errorf("recent job %s evicted", id)
			}
		}
	})
}

func TestStoreNeverEvictsLiveJobs(t *testing.T) {
	storeCases(t, func(t *testing.T, mk func(int) Store) {
		s := mk(2)
		var live []string
		for i := 0; i < 5; i++ {
			live = append(live, mustAdd(t, s, liveRec()))
		}
		// A terminal insert is immediately the only eviction candidate.
		victim := mustAdd(t, s, doneRec())
		if _, ok := s.Get(victim); ok {
			t.Error("terminal job retained while the store is over capacity with live jobs")
		}
		for _, id := range live {
			if _, ok := s.Get(id); !ok {
				t.Errorf("live job %s evicted", id)
			}
		}
		// Once a live job completes, Update makes it evictable.
		rec, _ := s.Get(live[0])
		done := rec.clone()
		done.State = traceio.JobFailed
		if err := s.Update(done); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(live[0]); ok {
			t.Error("completed job not evicted from an over-capacity store")
		}
	})
}

func TestStoreRemoveForgetsRejectedJob(t *testing.T) {
	storeCases(t, func(t *testing.T, mk func(int) Store) {
		s := mk(4)
		id := mustAdd(t, s, liveRec())
		s.Remove(id)
		if _, ok := s.Get(id); ok {
			t.Fatalf("removed job %s still in store", id)
		}
		// Update for an unknown ID (evicted or removed) is a no-op.
		gone := &Record{ID: id, State: traceio.JobDone}
		if err := s.Update(gone); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(id); ok {
			t.Error("Update resurrected a removed job")
		}
	})
}

func TestStoreSequentialIDs(t *testing.T) {
	storeCases(t, func(t *testing.T, mk func(int) Store) {
		s := mk(8)
		for i := 1; i <= 3; i++ {
			if id := mustAdd(t, s, failedRec()); id != fmt.Sprintf("j%08d", i) {
				t.Errorf("id %d: got %s", i, id)
			}
		}
	})
}

func TestStorePrefixedIDs(t *testing.T) {
	s := NewMemory(8, "n2-")
	if id := mustAdd(t, s, liveRec()); id != "n2-j00000001" {
		t.Errorf("prefixed id: got %s", id)
	}
}

func TestUpdateDoesNotDoubleEnterTerminalFIFO(t *testing.T) {
	s := NewMemory(2, "")
	a := mustAdd(t, s, liveRec())
	b := mustAdd(t, s, liveRec())
	// Finish job a and re-persist it twice: it must hold exactly one
	// FIFO slot, so job b (finished later) is evicted after a, not
	// before.
	for i := 0; i < 3; i++ {
		rec, _ := s.Get(a)
		done := rec.clone()
		done.State = traceio.JobDone
		if err := s.Update(done); err != nil {
			t.Fatal(err)
		}
	}
	recB, _ := s.Get(b)
	doneB := recB.clone()
	doneB.State = traceio.JobDone
	if err := s.Update(doneB); err != nil {
		t.Fatal(err)
	}
	// Capacity 2, both terminal: nothing over capacity yet.
	for i := 0; i < 2; i++ {
		mustAdd(t, s, doneRec())
	}
	if _, ok := s.Get(a); ok {
		t.Error("job a should be the first eviction")
	}
	if s.len() != 2 {
		t.Errorf("store retains %d records, want capacity 2", s.len())
	}
}

func TestGetReturnsSnapshotNotAlias(t *testing.T) {
	s := NewMemory(4, "")
	id := mustAdd(t, s, liveRec())
	rec, _ := s.Get(id)
	// Mutating the caller's record after Add/Update must not reach the
	// store (Add clones).
	outside := &Record{ID: id, State: traceio.JobRunning}
	if err := s.Update(outside); err != nil {
		t.Fatal(err)
	}
	outside.State = "mangled"
	got, _ := s.Get(id)
	if got.State != traceio.JobRunning {
		t.Errorf("stored state %q leaked a caller mutation", got.State)
	}
	if rec.State != traceio.JobQueued {
		t.Errorf("earlier snapshot mutated: %q", rec.State)
	}
}

// BenchmarkMemoryAddSaturated measures add while the store sits at
// capacity and every insert evicts — the worst case at peak submission
// rate, which must stay amortized O(1).
func BenchmarkMemoryAddSaturated(b *testing.B) {
	s := NewMemory(4096, "")
	for i := 0; i < 4096; i++ {
		if _, err := s.Add(doneRec()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Add(doneRec()); err != nil {
			b.Fatal(err)
		}
	}
}
