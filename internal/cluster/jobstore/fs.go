package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"npudvfs/internal/traceio"
)

// FS is the filesystem backend: the Memory index plus one JSON file
// per record under dir, written atomically (tmp + rename) so a crash
// at any instant leaves either the previous record or the new one,
// never a torn file. OpenFS scans the directory, rebuilds the index
// and the ID sequence, and exposes the non-terminal records through
// Pending so the daemon can re-enqueue the jobs a dead process
// acknowledged but never finished.
type FS struct {
	*Memory
	dir     string
	pending []*Record
}

// OpenFS opens (creating if needed) a store directory. capacity and
// idPrefix behave as in NewMemory. Stray *.tmp files — a crash between
// write and rename — are deleted: the rename never happened, so the
// previous record version (if any) is still authoritative. Files that
// fail to parse are skipped, not deleted, so an operator can inspect
// them.
func OpenFS(dir string, capacity int, idPrefix string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: creating store dir: %w", err)
	}
	f := &FS{Memory: NewMemory(capacity, idPrefix), dir: dir}
	f.Memory.persist = f.persistRecord
	f.Memory.unlink = f.unlinkRecord

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: scanning store dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			//lint:allow errsink boot-time cleanup of a crashed write whose rename never committed; the previous record version is still authoritative, so a failed removal loses nothing
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	// ID order: prefixed sequence numbers are zero-padded, so the
	// lexicographic sort is the submission order.
	sort.Strings(names)

	f.mu.Lock()
	defer f.mu.Unlock()
	for _, name := range names {
		//lint:allow lockorder startup-only: OpenFS seeds the index before the store is shared, nothing contends yet
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" {
			continue // unparsable: leave on disk for inspection
		}
		if rec.ID+".json" != name {
			continue // foreign or renamed file; not ours to index
		}
		f.seedLocked(&rec)
		if !traceio.IsTerminal(rec.State) {
			f.pending = append(f.pending, &rec)
		}
	}
	//lint:allow lockorder startup-only: recovery eviction runs before the store is shared
	f.evictLocked()
	return f, nil
}

func (f *FS) Kind() string { return "fs" }

// Pending returns the recovered non-terminal records, in ID order.
func (f *FS) Pending() []*Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pending
}

// Dir returns the store directory.
func (f *FS) Dir() string { return f.dir }

// persistRecord writes one record file atomically. Called with the
// index mutex held (Memory hook contract), so there is exactly one
// writer per ID and the fixed tmp name cannot collide.
func (f *FS) persistRecord(rec *Record) error {
	out := rec.clone()
	// Wall-clock stamp for operators reading the store directory; it
	// never feeds back into scheduling or results.
	//lint:allow detrand audited observability timestamp on the persisted record, never read back into behavior
	out.SavedUnixNano = time.Now().UnixNano()
	raw, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return fmt.Errorf("jobstore: encoding %s: %w", rec.ID, err)
	}
	path := filepath.Join(f.dir, rec.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobstore: writing %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: committing %s: %w", rec.ID, err)
	}
	return nil
}

func (f *FS) unlinkRecord(id string) {
	//lint:allow errsink a failed unlink resurrects an already-terminal record at next boot, which recovery serves from disk and never re-runs — safe, just unevicted
	_ = os.Remove(filepath.Join(f.dir, id+".json"))
}
