// Package npudvfs is an end-to-end reproduction of "Using Analytical
// Performance/Power Model and Fine-Grained DVFS to Enhance AI
// Accelerator Energy Efficiency" (ASPLOS '25): analytical per-operator
// performance models under frequency scaling, a temperature-aware
// power model, and genetic-algorithm generation of operator-level DVFS
// strategies, evaluated on a simulated Ascend-class NPU.
//
// This package is the public facade over the implementation packages:
//
//   - a simulated accelerator (Chip) with the paper's memory-hierarchy
//     abstraction and firmware voltage-frequency curve;
//   - workload builders (GPT-3, BERT, ResNet, ... ) producing operator
//     traces;
//   - a profiler standing in for the CANN profiler and lpmi_tool;
//   - performance-model fitting (Sect. 4) and power-model construction
//     (Sect. 5);
//   - DVFS strategy generation (Sect. 6) and a SetFreq executor
//     (Sect. 7.1);
//   - an experiments Lab regenerating every table and figure of the
//     paper's evaluation.
//
// The quickest route through the API is:
//
//	lab := npudvfs.NewLab()
//	model, _ := npudvfs.WorkloadByName("gpt3")
//	ms, _ := lab.BuildModels(model, true)
//	strategy, _, _, _ := npudvfs.GenerateStrategy(ms.Input(lab.Chip), npudvfs.DefaultStrategyConfig())
//	result, _ := lab.MeasureStrategy(model, strategy, npudvfs.DefaultExecutorOptions())
//
// See examples/ for runnable programs and DESIGN.md for the mapping
// between paper sections and packages.
package npudvfs

import (
	"context"

	"npudvfs/internal/adaptive"
	"npudvfs/internal/core"
	"npudvfs/internal/dualdvfs"
	"npudvfs/internal/executor"
	"npudvfs/internal/experiments"
	"npudvfs/internal/ga"
	"npudvfs/internal/npu"
	"npudvfs/internal/op"
	"npudvfs/internal/perfmodel"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
	"npudvfs/internal/profiler"
	"npudvfs/internal/server"
	"npudvfs/internal/server/client"
	"npudvfs/internal/thermal"
	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/vf"
	"npudvfs/internal/workload"
)

// Physical quantities. The model stack carries frequencies, times,
// voltages, powers and temperatures as these defined types; the
// dvfslint unitcheck rule keeps raw float64 from leaking back into the
// model APIs.
type (
	// MHz is an AICore frequency in megahertz.
	MHz = units.MHz
	// Micros is a duration in microseconds.
	Micros = units.Micros
	// Millis is a duration in milliseconds.
	Millis = units.Millis
	// Volt is a supply voltage.
	Volt = units.Volt
	// Watt is a power.
	Watt = units.Watt
	// Celsius is a temperature.
	Celsius = units.Celsius
	// Millijoule is an energy.
	Millijoule = units.Millijoule
)

// Hardware abstraction.
type (
	// Chip is the simulated accelerator: memory-hierarchy constants,
	// core count and the voltage-frequency curve.
	Chip = npu.Chip
	// VFCurve is a firmware voltage-frequency table.
	VFCurve = vf.Curve
	// OpSpec describes one operator: timeline scenario, block count,
	// Ld/St volumes, core cycles, pipeline and class.
	OpSpec = op.Spec
	// ThermalParams are the die's thermal constants (Eq. 15).
	ThermalParams = thermal.Params
	// GroundTruthPower generates the simulated chip's true power.
	GroundTruthPower = powersim.Ground
)

// Workloads and profiling.
type (
	// Workload is a named operator trace of one iteration.
	Workload = workload.Model
	// Profiler executes traces and records durations, pipeline
	// ratios, and power/temperature telemetry.
	Profiler = profiler.Profiler
	// Profile is one profiled iteration.
	Profile = profiler.Profile
)

// Models.
type (
	// PerfModel is the production performance model, Func. 2:
	// T(f) = A·f + C/f.
	PerfModel = perfmodel.Model
	// PowerModel is the temperature-aware per-operator power model.
	PowerModel = powermodel.Model
	// PowerCalibration holds the offline hardware parameters.
	PowerCalibration = powermodel.Offline
)

// Strategy generation and execution.
type (
	// Strategy is a generated per-iteration DVFS policy.
	Strategy = core.Strategy
	// FreqPoint is one frequency-change instruction of a Strategy.
	FreqPoint = core.FreqPoint
	// StrategyConfig tunes strategy generation.
	StrategyConfig = core.Config
	// StrategyInput bundles profile and models for generation.
	StrategyInput = core.Input
	// GAConfig tunes the genetic search.
	GAConfig = ga.Config
	// ExecutorOptions controls SetFreq actuation behaviour.
	ExecutorOptions = executor.Options
	// ExecutionResult is a measured iteration outcome.
	ExecutionResult = executor.Result
	// Executor runs traces under strategies on the simulated chip.
	Executor = executor.Executor
)

// Lab bundles the full experimental setup used to regenerate the
// paper's evaluation.
type Lab = experiments.Lab

// DefaultChip returns the reference simulated accelerator.
func DefaultChip() *Chip { return npu.Default() }

// AscendVFCurve returns the reference voltage-frequency curve of
// Fig. 9: 1000-1800 MHz in 100 MHz steps with a 1300 MHz knee.
func AscendVFCurve() *VFCurve { return vf.Ascend() }

// NewLab returns the reference laboratory configuration with seeded
// determinism.
func NewLab() *Lab { return experiments.NewLab() }

// NewLabFor builds a laboratory around a custom accelerator
// configuration — the porting path of Sect. 8.3.
func NewLabFor(chip *Chip, ground *GroundTruthPower, th ThermalParams, seed int64) *Lab {
	return experiments.NewLabFor(chip, ground, th, seed)
}

// WorkloadByName builds a workload from the registry (gpt3, bert,
// resnet50, resnet152, vgg19, vit, deit, shufflenetv2plus,
// llama2-inference).
func WorkloadByName(name string) (*Workload, error) { return workload.ByName(name) }

// WorkloadNames lists the registered workloads.
func WorkloadNames() []string { return workload.Names() }

// NewProfiler returns a profiler with realistic measurement noise.
func NewProfiler(chip *Chip, seed int64) *Profiler { return profiler.New(chip, seed) }

// FitPerfModel fits Func. 2 from measured (frequency, duration)
// pairs; two pairs solve it exactly (Sect. 4.3).
func FitPerfModel(freqMHz []MHz, micros []Micros) (PerfModel, error) {
	return perfmodel.FitFunc2(freqMHz, micros)
}

// GenerateStrategy runs classification, preprocessing and the genetic
// search of Sect. 6 and returns the strategy.
func GenerateStrategy(in StrategyInput, cfg StrategyConfig) (*Strategy, error) {
	strat, _, _, err := core.Generate(in, cfg)
	return strat, err
}

// DefaultStrategyConfig returns the paper's production settings: 5 ms
// FAI, 2% loss target, population 200, 600 generations.
func DefaultStrategyConfig() StrategyConfig { return core.DefaultConfig() }

// DefaultExecutorOptions returns the Ascend configuration: 1 ms
// SetFreq latency with event synchronization.
func DefaultExecutorOptions() ExecutorOptions { return executor.DefaultOptions() }

// FixedStrategy pins the whole iteration to one frequency.
func FixedStrategy(f MHz) *Strategy { return executor.FixedStrategy(f) }

// NewExecutor returns an executor over the chip with its ground-truth
// power.
func NewExecutor(chip *Chip, ground *GroundTruthPower) *Executor {
	return executor.New(chip, ground)
}

// DefaultGroundTruth returns the calibrated ground-truth power for a
// chip.
func DefaultGroundTruth(chip *Chip) *GroundTruthPower { return powersim.Default(chip) }

// DefaultThermal returns the reference thermal constants.
func DefaultThermal() ThermalParams { return thermal.Default() }

// ThermalState is an evolving die temperature.
type ThermalState = thermal.State

// NewThermalState returns a state at ambient equilibrium.
func NewThermalState(p ThermalParams) *ThermalState { return thermal.NewState(p) }

// AdaptiveController closes the loop around a deployed strategy: it
// observes measured iteration durations and ratchets frequencies up
// when the realized loss exceeds the target.
type AdaptiveController = adaptive.Controller

// NewAdaptiveController wraps a strategy with the production feedback
// guard. baselineMicros is the measured baseline iteration duration
// and target the allowed relative loss.
func NewAdaptiveController(curve *VFCurve, s *Strategy, baselineMicros Micros, target float64) (*AdaptiveController, error) {
	return adaptive.New(curve, s, baselineMicros, target)
}

// SaveStrategy and LoadStrategy persist strategies as JSON.
func SaveStrategy(path string, s *Strategy) error { return traceio.SaveStrategy(path, s) }

// LoadStrategy reads a strategy written by SaveStrategy.
func LoadStrategy(path string) (*Strategy, error) { return traceio.LoadStrategy(path) }

// SaveWorkload and LoadWorkload persist operator traces as JSON.
func SaveWorkload(path string, m *Workload) error { return traceio.SaveWorkload(path, m) }

// LoadWorkload reads a trace written by SaveWorkload.
func LoadWorkload(path string) (*Workload, error) { return traceio.LoadWorkload(path) }

// Dual-domain (core + uncore) strategy generation — the Sect. 8.2
// future work implemented in internal/dualdvfs.
type (
	// DualConfig tunes the two-domain search.
	DualConfig = dualdvfs.Config
	// DualInput bundles its inputs.
	DualInput = dualdvfs.Input
)

// DefaultDualConfig mirrors the production settings with a
// conservative uncore candidate set.
func DefaultDualConfig() DualConfig { return dualdvfs.DefaultConfig() }

// GenerateDualStrategy searches (core frequency, uncore scale) pairs
// per stage.
func GenerateDualStrategy(in DualInput, cfg DualConfig) (*Strategy, error) {
	strat, _, _, err := dualdvfs.Generate(in, cfg)
	return strat, err
}

// CalibrateUncoreDyn measures the clock-proportional uncore idle power
// needed by the dual-domain search.
func CalibrateUncoreDyn(rig *PowerRig, probeScale float64, samples int) (float64, error) {
	return dualdvfs.CalibrateUncore(rig, probeScale, samples)
}

// PowerRig bundles the live system power calibration measures.
type PowerRig = powermodel.Rig

// GenerateStrategyContext is GenerateStrategy under a context: the
// genetic search observes cancellation at generation boundaries, so a
// timed-out request stops burning CPU within milliseconds.
func GenerateStrategyContext(ctx context.Context, in StrategyInput, cfg StrategyConfig) (*Strategy, error) {
	strat, _, _, err := core.GenerateContext(ctx, in, cfg)
	return strat, err
}

// Serving layer (DESIGN.md §8): dvfsd exposes the Fig. 1 pipeline over
// HTTP with a bounded worker pool and a strategy cache.
type (
	// Server is the dvfsd strategy service.
	Server = server.Server
	// ServerConfig sizes its worker pool, queue, cache and deadlines.
	ServerConfig = server.Config
	// Client talks to a running dvfsd.
	Client = client.Client
	// StrategyRequest is the POST /v1/strategies body.
	StrategyRequest = traceio.StrategyRequest
	// SearchSpec is its client-tunable search configuration.
	SearchSpec = traceio.SearchSpec
	// JobStatus is the job-polling response, carrying the strategy and
	// predicted deltas once done.
	JobStatus = traceio.JobStatus
	// ModelBundle is the serialized form of a workload's fitted
	// models, the warm-start artifact of dvfsd -load-models.
	ModelBundle = traceio.ModelBundle
)

// NewServer starts the service's worker pool; expose it with
// (*Server).Handler and stop it with (*Server).Shutdown. It errors on
// an inconsistent cluster configuration (a node ID absent from the
// ring).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return client.New(baseURL) }

// FingerprintTrace returns the canonical trace digest the strategy
// cache is keyed by.
func FingerprintTrace(trace []OpSpec) string { return traceio.Fingerprint(trace) }

// SaveModels and LoadModels persist fitted perf/power models; a loaded
// bundle skips calibration and profiling (Lab.ModelsFromBundle).
func SaveModels(path string, b *ModelBundle) error { return traceio.SaveModels(path, b) }

// LoadModels reads a bundle written by SaveModels.
func LoadModels(path string) (*ModelBundle, error) { return traceio.LoadModels(path) }
