package npudvfs_test

import (
	"fmt"

	"npudvfs"
)

// Fitting the production performance model from two profiled points:
// the two parameters of T(f) = A·f + C/f are solved exactly, and the
// model interpolates the whole DVFS range (Sect. 4.3).
func ExampleFitPerfModel() {
	freqs := []npudvfs.MHz{1000, 1800}
	times := []npudvfs.Micros{120.0, 90.0} // µs measured at the two endpoints
	m, err := npudvfs.FitPerfModel(freqs, times)
	if err != nil {
		panic(err)
	}
	for _, f := range []npudvfs.MHz{1000, 1400, 1800} {
		fmt.Printf("%.0f MHz -> %.1f us\n", f, m.Micros(f))
	}
	// Output:
	// 1000 MHz -> 120.0 us
	// 1400 MHz -> 98.6 us
	// 1800 MHz -> 90.0 us
}

// The firmware voltage-frequency curve of Fig. 9: flat below the
// 1300 MHz knee, linear above it.
func ExampleAscendVFCurve() {
	curve := npudvfs.AscendVFCurve()
	for _, f := range []npudvfs.MHz{1000, 1300, 1800} {
		fmt.Printf("%.0f MHz -> %.3f V\n", f, curve.Voltage(f))
	}
	// Output:
	// 1000 MHz -> 0.750 V
	// 1300 MHz -> 0.750 V
	// 1800 MHz -> 0.830 V
}

// A strategy maps trace positions to frequencies; FreqAt answers what
// an operator will run at.
func ExampleStrategy_FreqAt() {
	s := &npudvfs.Strategy{
		BaselineMHz: 1800,
		Points: []npudvfs.FreqPoint{
			{OpIndex: 0, FreqMHz: 1800},
			{OpIndex: 100, FreqMHz: 1100},
			{OpIndex: 200, FreqMHz: 1800},
		},
	}
	fmt.Println(s.FreqAt(50), s.FreqAt(150), s.FreqAt(250))
	fmt.Println("switches:", s.Switches())
	// Output:
	// 1800 1100 1800
	// switches: 2
}

// The white-box timeline model: a memory-bound operator's duration is
// nearly frequency-insensitive above its uncore saturation point
// (Eq. 4); the small residual comes from its non-overlapped core
// computation.
func ExampleChip() {
	chip := npudvfs.DefaultChip()
	gelu := npudvfs.OpSpec{
		Name: "Gelu", Blocks: 6,
		LoadBytes: 4 << 20, StoreBytes: 4 << 20, CoreCycles: 300,
		CorePipe: 1 /* vector */, L2Hit: 0.1, PrePostTime: 2,
	}
	t1000 := chip.Time(&gelu, 1000)
	t1800 := chip.Time(&gelu, 1800)
	fmt.Printf("slowdown at 1000 vs 1800 MHz: %.1f%%\n", 100*(t1000/t1800-1))
	// Output:
	// slowdown at 1000 vs 1800 MHz: 3.3%
}
