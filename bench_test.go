// Package npudvfs hosts the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation, each
// regenerating the corresponding result on the simulated NPU and
// reporting its headline metric. Run with:
//
//	go test -bench=. -benchmem
package npudvfs

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"npudvfs/internal/core"
	"npudvfs/internal/executor"
	"npudvfs/internal/experiments"
	"npudvfs/internal/ga"
	"npudvfs/internal/perfmodel"
	"npudvfs/internal/profiler"
	"npudvfs/internal/thermal"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() { benchLab = experiments.NewLab() })
	return benchLab
}

// BenchmarkFig3ThroughputCycles regenerates Fig. 3: Ld/St throughput
// saturation and the cycle-frequency relation.
func BenchmarkFig3ThroughputCycles(b *testing.B) {
	l := lab()
	var sat float64
	for i := 0; i < b.N; i++ {
		sat = l.Fig3().SaturationMHz
	}
	b.ReportMetric(sat, "saturation-MHz")
}

// BenchmarkFig4PiecewiseLinear regenerates Fig. 4: the convex
// piecewise-linear cycle curve and its breakpoints.
func BenchmarkFig4PiecewiseLinear(b *testing.B) {
	l := lab()
	var bps int
	for i := 0; i < b.N; i++ {
		bps = len(l.Fig4().BreakpointsMHz)
	}
	b.ReportMetric(float64(bps), "breakpoints")
}

// BenchmarkFig9VFCurve regenerates Fig. 9: the firmware V-F table.
func BenchmarkFig9VFCurve(b *testing.B) {
	l := lab()
	var pts int
	for i := 0; i < b.N; i++ {
		pts = len(l.Fig9().Points)
	}
	b.ReportMetric(float64(pts), "points")
}

// BenchmarkFig10TempPower regenerates Fig. 10: the linear
// temperature/SoC-power relation across operators.
func BenchmarkFig10TempPower(b *testing.B) {
	l := lab()
	var k float64
	for i := 0; i < b.N; i++ {
		r, err := l.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		k = r.FittedK
	}
	b.ReportMetric(k, "k-C-per-W")
}

// BenchmarkFig15PerfModelCDF regenerates Fig. 15: the error CDF of the
// three fitting functions over >5,000 operator instances.
func BenchmarkFig15PerfModelCDF(b *testing.B) {
	l := lab()
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := l.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		mean = r.MeanError[experiments.Func2]
	}
	b.ReportMetric(mean*100, "func2-mean-err-%")
}

// BenchmarkFig16ExampleOperators regenerates Fig. 16: per-operator
// predictions for the five representative operators.
func BenchmarkFig16ExampleOperators(b *testing.B) {
	l := lab()
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := l.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			if row.MeanErr[experiments.Func2] > worst {
				worst = row.MeanErr[experiments.Func2]
			}
		}
	}
	b.ReportMetric(worst*100, "func2-worst-err-%")
}

// BenchmarkFig17GAConvergence regenerates Fig. 17: full 200x600 GA
// searches at five loss targets on GPT-3.
func BenchmarkFig17GAConvergence(b *testing.B) {
	l := lab()
	var gens int
	for i := 0; i < b.N; i++ {
		r, err := l.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		gens = r.Series[0].ConvergedAt(0.01)
	}
	b.ReportMetric(float64(gens), "gens-to-converge-2%")
}

// BenchmarkFig18Comparatives regenerates Fig. 18: the V100-delay and
// coarse-FAI comparisons on GPT-3 training.
func BenchmarkFig18Comparatives(b *testing.B) {
	l := lab()
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := l.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		spread = r.Rows[0].CoreReduction - r.Rows[len(r.Rows)-1].CoreReduction
	}
	b.ReportMetric(spread*100, "fine-vs-coarse-core-%")
}

// BenchmarkTable2PowerModelError regenerates Table 2: the power-model
// error distribution across seven validation workloads.
func BenchmarkTable2PowerModelError(b *testing.B) {
	l := lab()
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		mean = r.MeanErr
	}
	b.ReportMetric(mean*100, "mean-err-%")
}

// BenchmarkTable2TemperatureAblation reports the γ=0 ablation of
// Sect. 7.3 alongside the temperature-aware error.
func BenchmarkTable2TemperatureAblation(b *testing.B) {
	l := lab()
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		delta = r.AblationMeanErr - r.MeanErr
	}
	b.ReportMetric(delta*100, "ablation-penalty-%")
}

// BenchmarkTable3EndToEnd regenerates Table 3: end-to-end optimization
// of GPT-3 at five loss targets plus BERT/ResNet-50/ResNet-152.
func BenchmarkTable3EndToEnd(b *testing.B) {
	l := lab()
	var avgCore float64
	for i := 0; i < b.N; i++ {
		r, err := l.Table3()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: average AICore reduction across the four 2%-target
		// rows (paper: 13.44%).
		sum, n := 0.0, 0
		for _, row := range r.Rows {
			if row.LossTarget == 0.02 {
				sum += row.CoreReduction
				n++
			}
		}
		avgCore = sum / float64(n)
	}
	b.ReportMetric(avgCore*100, "avg-core-reduction-%")
}

// BenchmarkFitFunc1VsFunc2 regenerates the Sect. 4.3 fit-cost
// comparison on ShuffleNetV2Plus.
func BenchmarkFitFunc1VsFunc2(b *testing.B) {
	l := lab()
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := l.FitCost()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup
	}
	b.ReportMetric(speedup, "func2-speedup-x")
}

// BenchmarkInferenceScenario regenerates the Sect. 8.4 host-bound
// inference experiment.
func BenchmarkInferenceScenario(b *testing.B) {
	l := lab()
	var core float64
	for i := 0; i < b.N; i++ {
		r, err := l.Inference()
		if err != nil {
			b.Fatal(err)
		}
		core = r.CoreReduction
	}
	b.ReportMetric(core*100, "core-reduction-%")
}

// BenchmarkPolicyScoringThroughput regenerates the Sect. 8.1
// model-based scoring-speed argument.
func BenchmarkPolicyScoringThroughput(b *testing.B) {
	l := lab()
	var perEval float64
	for i := 0; i < b.N; i++ {
		r, err := l.ScoringThroughput(20000)
		if err != nil {
			b.Fatal(err)
		}
		perEval = r.PerEvalMicros
	}
	b.ReportMetric(perEval, "us-per-policy")
}

// BenchmarkGAPriorSeeding is the DESIGN.md ablation: the GA with the
// paper's baseline+prior seeds versus a purely random first
// generation, on the BERT problem.
func BenchmarkGAPriorSeeding(b *testing.B) {
	l := lab()
	ms, err := l.BuildModels(workload.BERT(), true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	strat, stages, _, err := core.Generate(ms.Input(l.Chip), core.Config{
		FAIMicros:      cfg.FAIMicros,
		PerfLossTarget: cfg.PerfLossTarget,
		PriorLFCMHz:    cfg.PriorLFCMHz,
		Guard:          cfg.Guard,
		GA:             ga.Config{PopSize: 4, Generations: 1, MutationRate: 0.1, CrossoverRate: 0.5, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = strat
	ev, err := core.NewEvaluator(ms.Input(l.Chip), cfg, stages)
	if err != nil {
		b.Fatal(err)
	}
	gaCfg := ga.DefaultConfig()
	gaCfg.PopSize = 60
	gaCfg.Generations = 150
	var gap float64
	for i := 0; i < b.N; i++ {
		seeded, err := ga.Run(&evProblem{ev: ev, seeded: true}, gaCfg)
		if err != nil {
			b.Fatal(err)
		}
		unseeded, err := ga.Run(&evProblem{ev: ev}, gaCfg)
		if err != nil {
			b.Fatal(err)
		}
		gap = (seeded.BestScore - unseeded.BestScore) / unseeded.BestScore
	}
	b.ReportMetric(gap*100, "seeding-gain-%")
}

// benchProblem returns the stage-frequency search problem for a
// Table 3 workload (BERT), built once and cached: the fixture for the
// scoring-engine benchmarks below.
var (
	benchProbOnce sync.Once
	benchProbEv   *core.Evaluator
	benchProbErr  error
)

func benchEvaluator(b *testing.B) *core.Evaluator {
	benchProbOnce.Do(func() {
		l := lab()
		ms, err := l.BuildModels(workload.BERT(), true)
		if err != nil {
			benchProbErr = err
			return
		}
		cfg := core.DefaultConfig()
		_, stages, _, err := core.Generate(ms.Input(l.Chip), core.Config{
			FAIMicros:      cfg.FAIMicros,
			PerfLossTarget: cfg.PerfLossTarget,
			PriorLFCMHz:    cfg.PriorLFCMHz,
			Guard:          cfg.Guard,
			GA:             ga.Config{PopSize: 4, Generations: 1, MutationRate: 0.1, CrossoverRate: 0.5, Seed: 1},
		})
		if err != nil {
			benchProbErr = err
			return
		}
		benchProbEv, benchProbErr = core.NewEvaluator(ms.Input(l.Chip), cfg, stages)
	})
	if benchProbErr != nil {
		b.Fatal(benchProbErr)
	}
	return benchProbEv
}

// BenchmarkScore measures one steady-state policy evaluation on the
// Table 3 (BERT) stage problem — the innermost loop of the GA search.
// The perf contract (DESIGN.md §10) requires 0 allocs/op here.
func BenchmarkScore(b *testing.B) {
	ev := benchEvaluator(b)
	rng := rand.New(rand.NewSource(3))
	ind := make([]int, ev.Genes())
	for i := range ind {
		ind[i] = rng.Intn(len(ev.Grid()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Score(ind)
	}
}

// BenchmarkGAGeneration measures one full GA generation (population
// 200) on the Table 3 (BERT) problem: selection, breeding, scoring and
// ranking. ns/op is the per-generation cost of the production search.
func BenchmarkGAGeneration(b *testing.B) {
	ev := benchEvaluator(b)
	cfg := ga.DefaultConfig()
	cfg.PopSize = 200
	cfg.Generations = b.N
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := ga.Run(benchGAProblem(ev), cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGASearch measures a reduced end-to-end GA search (200x60)
// on the Table 3 (BERT) problem: the unit the ISSUE 5 ≥3x throughput
// target is stated over. The Engine is built once and reused across
// iterations — the steady-state shape of the serving path, where a
// search allocates nothing (ISSUE 10 perf contract, DESIGN.md §13).
func BenchmarkGASearch(b *testing.B) {
	ev := benchEvaluator(b)
	cfg := ga.DefaultConfig()
	cfg.PopSize = 200
	cfg.Generations = 60
	// Pinned to one island and one worker so ns/op measures the same
	// single-threaded search on every machine (the island count would
	// otherwise default from GOMAXPROCS) and stays allocation-free
	// (worker goroutines allocate). BenchmarkGASearchScaling owns the
	// multi-island story.
	cfg.Islands = 1
	cfg.Workers = 1
	eng, err := ga.New(benchGAProblem(ev), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var evals int
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		evals = res.Evaluations
	}
	b.ReportMetric(float64(evals)*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkGASearchScaling measures the same search with the
// population split across 8 islands at increasing worker counts — the
// evals/s curve scripts/bench.sh turns into parallel_efficiency. On a
// single-CPU runner (GOMAXPROCS=1) the worker goroutines serialize
// and all points degenerate to the sequential rate; results are
// byte-identical at every point regardless (determinism contract).
func BenchmarkGASearchScaling(b *testing.B) {
	ev := benchEvaluator(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := ga.DefaultConfig()
			cfg.PopSize = 200
			cfg.Generations = 60
			cfg.Islands = 8
			cfg.Workers = workers
			eng, err := ga.New(benchGAProblem(ev), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var evals int
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Evaluations
			}
			b.ReportMetric(float64(evals)*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// BenchmarkScoreBatch measures the gene-major batched scorer against
// the per-individual Score loop it replaces in cohort scoring: 64
// random candidates per op, ns/op is the whole cohort.
func BenchmarkScoreBatch(b *testing.B) {
	ev := benchEvaluator(b)
	bs, ok := benchGAProblem(ev).(ga.BatchScorer)
	if !ok {
		b.Fatal("core problem does not implement ga.BatchScorer")
	}
	rng := rand.New(rand.NewSource(3))
	const cohort = 64
	n := ev.Genes()
	genes := make([]int, cohort*n)
	for i := range genes {
		genes[i] = rng.Intn(len(ev.Grid()))
	}
	scores := make([]float64, cohort)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.ScoreBatch(genes, cohort, scores)
	}
	b.ReportMetric(float64(cohort)*float64(b.N)/b.Elapsed().Seconds(), "scores/s")
}

// BenchmarkExecutorRun measures one simulated iteration of the BERT
// trace under a many-switch strategy — the hardware-run side of the
// evaluation, rewritten in ISSUE 5 from O(ops x plan) to O(ops+plan).
func BenchmarkExecutorRun(b *testing.B) {
	l := lab()
	m := workload.BERT()
	ex := executor.New(l.Chip, l.Ground)
	grid := l.Chip.Curve.Grid()
	strat := &core.Strategy{BaselineMHz: grid[len(grid)-1]}
	for i := 0; i < len(m.Trace); i += 40 {
		strat.Points = append(strat.Points, core.FreqPoint{
			OpIndex: i,
			FreqMHz: grid[(i/40)%len(grid)],
		})
	}
	opt := executor.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := thermal.NewState(l.Thermal)
		if _, err := ex.Run(m.Trace, strat, th, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGAProblem returns the ga.Problem the production pipeline
// searches for this evaluator — the evaluator's own problem, which
// implements ga.PartialScorer and therefore exercises the incremental
// scoring path the throughput target is stated over.
func benchGAProblem(ev *core.Evaluator) ga.Problem {
	return ev.Problem()
}

// evProblem adapts a core.Evaluator into a ga.Problem, optionally with
// the paper's seed individuals.
type evProblem struct {
	ev     *core.Evaluator
	seeded bool
}

func (p *evProblem) Genes() int              { return p.ev.Genes() }
func (p *evProblem) Alleles() int            { return len(p.ev.Grid()) }
func (p *evProblem) Score(ind []int) float64 { return p.ev.Score(ind) }
func (p *evProblem) Seeds() [][]int {
	if !p.seeded {
		return nil
	}
	baseline := make([]int, p.ev.Genes())
	for i := range baseline {
		baseline[i] = p.ev.BaselineIndex()
	}
	return [][]int{baseline}
}

// BenchmarkFitFunc2Micro measures the raw cost of one direct Func. 2
// solve, the inner loop of model construction.
func BenchmarkFitFunc2Micro(b *testing.B) {
	fs := []units.MHz{1000, 1800}
	ts := []units.Micros{123.4, 98.7}
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.FitFunc2(fs, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileGPT3Iteration measures profiling one full GPT-3
// iteration (~18,000 operators).
func BenchmarkProfileGPT3Iteration(b *testing.B) {
	m := workload.GPT3()
	l := lab()
	p := profiler.NewNoiseless(l.Chip)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(m.Trace, 1800); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreGPT3Policy measures one policy evaluation on the
// GPT-3 stage problem (the unit of Sect. 8.1's argument).
func BenchmarkScoreGPT3Policy(b *testing.B) {
	l := lab()
	r, err := l.ScoringThroughput(1) // builds and caches the evaluator path
	if err != nil {
		b.Fatal(err)
	}
	_ = r
	ms, err := l.BuildModels(workload.BERT(), true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	_, stages, _, err := core.Generate(ms.Input(l.Chip), core.Config{
		FAIMicros:      cfg.FAIMicros,
		PerfLossTarget: cfg.PerfLossTarget,
		PriorLFCMHz:    cfg.PriorLFCMHz,
		Guard:          cfg.Guard,
		GA:             ga.Config{PopSize: 4, Generations: 1, MutationRate: 0.1, CrossoverRate: 0.5, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.NewEvaluator(ms.Input(l.Chip), cfg, stages)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ind := make([]int, ev.Genes())
	for i := range ind {
		ind[i] = rng.Intn(len(ev.Grid()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Score(ind)
	}
}

// BenchmarkCoarseGrainedBaseline contrasts whole-program DVFS (prior
// work's granularity) with the fine-grained strategy on GPT-3.
func BenchmarkCoarseGrainedBaseline(b *testing.B) {
	l := lab()
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := l.CoarseGrained()
		if err != nil {
			b.Fatal(err)
		}
		gap = r.FineGrained.CoreReduction - r.BestFixed.CoreReduction
	}
	b.ReportMetric(gap*100, "fine-vs-fixed-core-%")
}

// BenchmarkModelFreeComparison regenerates the Sect. 8.1 equal-budget
// search comparison.
func BenchmarkModelFreeComparison(b *testing.B) {
	l := lab()
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := l.ModelFree(300)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.ModelBasedCoreRed - r.ModelFreeCoreRed
	}
	b.ReportMetric(gap*100, "modelbased-gain-%")
}

// BenchmarkUncoreDVFSWhatIf regenerates the Sect. 8.2 headroom study.
func BenchmarkUncoreDVFSWhatIf(b *testing.B) {
	l := lab()
	var soc float64
	for i := 0; i < b.N; i++ {
		r, err := l.UncoreDVFS()
		if err != nil {
			b.Fatal(err)
		}
		soc = r.Rows[len(r.Rows)-1].SoCReduction
	}
	b.ReportMetric(soc*100, "combined-soc-reduction-%")
}

// BenchmarkDualDomainDVFS is the Sect. 8.2 future-work ablation: joint
// core+uncore strategy search versus the identical machinery with the
// uncore knob removed.
func BenchmarkDualDomainDVFS(b *testing.B) {
	l := lab()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := l.DualDomain()
		if err != nil {
			b.Fatal(err)
		}
		gain = r.DualSoC - r.CoreOnlySoC
	}
	b.ReportMetric(gain*100, "dual-extra-soc-%")
}

// BenchmarkFAISweep measures the savings-vs-granularity curve.
func BenchmarkFAISweep(b *testing.B) {
	l := lab()
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := l.FAISweep()
		if err != nil {
			b.Fatal(err)
		}
		spread = r.Rows[0].CoreReduction - r.Rows[len(r.Rows)-1].CoreReduction
	}
	b.ReportMetric(spread*100, "5ms-vs-1s-core-%")
}

// BenchmarkSeedsRobustness measures run-to-run spread of the headline
// result.
func BenchmarkSeedsRobustness(b *testing.B) {
	l := lab()
	var std float64
	for i := 0; i < b.N; i++ {
		r, err := l.SeedsRobustness(5)
		if err != nil {
			b.Fatal(err)
		}
		std = r.StdCoreRed
	}
	b.ReportMetric(std*100, "core-red-std-%")
}

// BenchmarkAdaptiveGuard measures the closed-loop controller
// converging an unguarded strategy under its target.
func BenchmarkAdaptiveGuard(b *testing.B) {
	l := lab()
	var adj int
	for i := 0; i < b.N; i++ {
		r, err := l.Adaptive()
		if err != nil {
			b.Fatal(err)
		}
		adj = r.Adjustments
	}
	b.ReportMetric(float64(adj), "adjustments")
}

// BenchmarkSensitivity regenerates the Sect. 6 operator trade-off
// observation.
func BenchmarkSensitivity(b *testing.B) {
	l := lab()
	var matmulRatio float64
	for i := 0; i < b.N; i++ {
		r := l.Sensitivity(1800, 1600)
		matmulRatio = r.Rows[0].EfficiencyRatio
	}
	b.ReportMetric(matmulRatio, "matmul-gain-per-loss")
}

// BenchmarkSearchAblation compares the GA against greedy and random
// search on the same evaluator and budget.
func BenchmarkSearchAblation(b *testing.B) {
	l := lab()
	var gaMinusGreedy float64
	for i := 0; i < b.N; i++ {
		r, err := l.SearchAblation()
		if err != nil {
			b.Fatal(err)
		}
		var ga, greedy float64
		for _, row := range r.Rows {
			switch row.Algorithm {
			case "genetic":
				ga = row.CoreReduction
			case "greedy":
				greedy = row.CoreReduction
			}
		}
		gaMinusGreedy = ga - greedy
	}
	b.ReportMetric(gaMinusGreedy*100, "ga-vs-greedy-core-%")
}
