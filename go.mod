module npudvfs

go 1.22
