// Command npu-profile plays the role of the CANN profiler: it executes
// a workload iteration on the simulated NPU at one or more core
// frequencies and prints per-class and per-bottleneck summaries, the
// LFC/HFC stage structure, and optionally a per-operator dump.
//
// Usage:
//
//	npu-profile -model gpt3 -freqs 1000,1800
//	npu-profile -model bert -freqs 1800 -ops -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"npudvfs/internal/classify"
	"npudvfs/internal/npu"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/profiler"
	"npudvfs/internal/traceio"
	"npudvfs/internal/workload"
)

func main() {
	modelName := flag.String("model", "gpt3", "workload name ("+strings.Join(workload.Names(), ", ")+")")
	freqArg := flag.String("freqs", "1800", "comma-separated core frequencies in MHz")
	dumpOps := flag.Bool("ops", false, "dump every operator record")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	faiMs := flag.Float64("fai", 5, "frequency adjustment interval in ms for stage summary")
	seed := flag.Int64("seed", 1, "measurement-noise seed")
	saveTrace := flag.String("save-trace", "", "export the workload trace JSON to this path")
	chromeTrace := flag.String("chrome-trace", "", "export a chrome://tracing timeline of the first profiled frequency")
	flag.Parse()

	m, err := workload.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	if *saveTrace != "" {
		if err := traceio.SaveWorkload(*saveTrace, m); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *saveTrace)
	}
	var freqs []float64
	for _, part := range strings.Split(*freqArg, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad frequency %q: %w", part, err))
		}
		freqs = append(freqs, f)
	}
	chip := npu.Default()
	p := profiler.New(chip, *seed)
	for i, f := range freqs {
		prof, err := p.Run(m.Trace, f)
		if err != nil {
			fatal(err)
		}
		if i == 0 && *chromeTrace != "" {
			if err := traceio.SaveChromeTrace(*chromeTrace, prof, nil); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "chrome trace written to %s\n", *chromeTrace)
		}
		if *asJSON {
			emitJSON(prof, *dumpOps)
			continue
		}
		report(m, prof, *faiMs*1000, *dumpOps)
	}
}

func report(m *workload.Model, prof *profiler.Profile, faiMicros float64, dumpOps bool) {
	fmt.Printf("== %s at %.0f MHz: %d operators, iteration %.3f ms\n",
		m.Name, prof.FreqMHz, len(prof.Records), prof.TotalMicros/1000)
	results := classify.Trace(prof)
	timeBy := map[classify.Bottleneck]float64{}
	countBy := classify.Histogram(results)
	sensTime := 0.0
	for i, r := range results {
		timeBy[r.Bottleneck] += prof.Records[i].DurMicros
		if r.Sensitive {
			sensTime += prof.Records[i].DurMicros
		}
	}
	fmt.Printf("   frequency-sensitive time: %.1f%%\n", 100*sensTime/prof.TotalMicros)
	for b := classify.NoPipeline; b <= classify.IdleSlot; b++ {
		if countBy[b] == 0 {
			continue
		}
		fmt.Printf("   %-14s ops=%6d  time=%6.2f%%\n",
			b, countBy[b], 100*timeBy[b]/prof.TotalMicros)
	}
	stages, err := preprocess.Stages(prof, results, faiMicros)
	if err != nil {
		fatal(err)
	}
	lfc := 0
	for _, s := range stages {
		if !s.Sensitive {
			lfc++
		}
	}
	fmt.Printf("   stages at %.0f ms FAI: %d (%d LFC, %d HFC)\n",
		faiMicros/1000, len(stages), lfc, len(stages)-lfc)
	if dumpOps {
		for i := range prof.Records {
			r := &prof.Records[i]
			fmt.Printf("   #%05d %-28s %-13s %9.2f us  %v\n",
				r.Index, r.Spec.Key(), r.Spec.Class, r.DurMicros, results[i].Bottleneck)
		}
	}
}

// jsonRecord is the stable JSON projection of a profiled operator.
type jsonRecord struct {
	Index  int     `json:"index"`
	Key    string  `json:"key"`
	Class  string  `json:"class"`
	Start  float64 `json:"start_us"`
	Dur    float64 `json:"dur_us"`
	Bottle string  `json:"bottleneck"`
}

func emitJSON(prof *profiler.Profile, dumpOps bool) {
	results := classify.Trace(prof)
	out := struct {
		FreqMHz     float64      `json:"freq_mhz"`
		TotalMicros float64      `json:"total_us"`
		Operators   int          `json:"operators"`
		Records     []jsonRecord `json:"records,omitempty"`
	}{
		FreqMHz:     prof.FreqMHz,
		TotalMicros: prof.TotalMicros,
		Operators:   len(prof.Records),
	}
	if dumpOps {
		for i := range prof.Records {
			r := &prof.Records[i]
			out.Records = append(out.Records, jsonRecord{
				Index:  r.Index,
				Key:    r.Spec.Key(),
				Class:  r.Spec.Class.String(),
				Start:  r.StartMicros,
				Dur:    r.DurMicros,
				Bottle: results[i].Bottleneck.String(),
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npu-profile:", err)
	os.Exit(1)
}
