// Command dvfs-run performs the full end-to-end energy optimization of
// Fig. 1 for one workload on the simulated NPU: offline chip
// calibration, profiling at the model-building frequencies,
// performance and power model construction, genetic-algorithm strategy
// generation, and measured execution of the resulting strategy against
// the fixed-maximum-frequency baseline.
//
// Usage:
//
//	dvfs-run -model gpt3 -target 0.02
//	dvfs-run -model bert -target 0.04 -fai 100 -pop 200 -gens 600
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"npudvfs/internal/core"
	"npudvfs/internal/dualdvfs"
	"npudvfs/internal/executor"
	"npudvfs/internal/experiments"
	"npudvfs/internal/ga"
	"npudvfs/internal/powermodel"
	"npudvfs/internal/powersim"
	"npudvfs/internal/preprocess"
	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

func main() {
	modelName := flag.String("model", "gpt3", "workload name ("+strings.Join(workload.Names(), ", ")+")")
	target := flag.Float64("target", 0.02, "performance loss target (fraction)")
	faiMs := flag.Float64("fai", 5, "frequency adjustment interval in ms")
	pop := flag.Int("pop", 200, "GA population size")
	gens := flag.Int("gens", 600, "GA generations")
	seed := flag.Int64("seed", 1, "GA seed")
	latencyMs := flag.Float64("latency", 1, "SetFreq actuation latency in ms")
	dual := flag.Bool("dual", false, "search core+uncore pairs (two-domain extension)")
	saveStrategy := flag.String("save-strategy", "", "write the generated strategy JSON to this path")
	loadStrategy := flag.String("load-strategy", "", "skip the search and execute this strategy JSON")
	saveModels := flag.String("save-models", "", "write the fitted perf/power models to this path")
	loadModels := flag.String("load-models", "", "reuse fitted models from this path, skipping calibration and profiling")
	noMeasure := flag.Bool("no-measure", false, "stop after strategy generation; skip the measured baseline/DVFS runs")
	flag.Parse()

	m, err := workload.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	lab := experiments.NewLab()
	var strat *core.Strategy
	if *loadStrategy != "" {
		strat, err = traceio.LoadStrategy(*loadStrategy)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded strategy %s: %d SetFreq per iteration\n", *loadStrategy, strat.Switches())
	} else {
		var ms *experiments.Models
		if *loadModels != "" {
			b, err := traceio.LoadModels(*loadModels)
			if err != nil {
				fatal(err)
			}
			ms, err = lab.ModelsFromBundle(m, b)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("loaded fitted models for %s from %s (calibration and profiling skipped)\n",
				m.Name, *loadModels)
		} else {
			fmt.Printf("calibrating chip and modeling %s (profiles at 1000/1800 MHz)...\n", m.Name)
			ms, err = lab.BuildModels(m, true)
			if err != nil {
				fatal(err)
			}
		}
		if *saveModels != "" {
			b, err := ms.Bundle()
			if err != nil {
				fatal(err)
			}
			if err := traceio.SaveModels(*saveModels, b); err != nil {
				fatal(err)
			}
			fmt.Printf("fitted models written to %s\n", *saveModels)
		}
		cfg := core.DefaultConfig()
		cfg.PerfLossTarget = *target
		cfg.FAIMicros = units.Millis(*faiMs).Micros()
		cfg.GA.PopSize = *pop
		cfg.GA.Generations = *gens
		cfg.GA.Seed = *seed

		var stages []preprocess.Stage
		var gaRes *ga.Result
		if *dual {
			rig := &powermodel.Rig{
				Chip:    lab.Chip,
				Ground:  lab.Ground,
				Sensor:  powersim.NewSensor(99),
				Thermal: lab.Thermal,
			}
			dyn, err := dualdvfs.CalibrateUncore(rig, 0.8, 64)
			if err != nil {
				fatal(err)
			}
			dcfg := dualdvfs.DefaultConfig()
			dcfg.PerfLossTarget = cfg.PerfLossTarget
			dcfg.FAIMicros = cfg.FAIMicros
			dcfg.GA = cfg.GA
			strat, stages, gaRes, err = dualdvfs.Generate(dualdvfs.Input{
				Chip: lab.Chip, Profile: ms.Baseline, Power: ms.Power, UncoreDynW: dyn,
			}, dcfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("dual-domain search: uncore dyn %.1f W, %d uncore switches\n",
				dyn, strat.UncoreSwitches())
		} else {
			strat, stages, gaRes, err = core.Generate(ms.Input(lab.Chip), cfg)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("search: %d stages, %d evaluations, best score %.4g\n",
			len(stages), gaRes.Evaluations, gaRes.BestScore)
		fmt.Printf("strategy: %d SetFreq per iteration\n", strat.Switches())
		if *saveStrategy != "" {
			if err := traceio.SaveStrategy(*saveStrategy, strat); err != nil {
				fatal(err)
			}
			fmt.Printf("strategy written to %s\n", *saveStrategy)
		}
	}

	if *noMeasure {
		return
	}
	base, err := lab.MeasureFixed(m, lab.Chip.Curve.Max())
	if err != nil {
		fatal(err)
	}
	opt := executor.DefaultOptions()
	opt.SetFreqLatencyMicros = *latencyMs * 1000
	dvfs, err := lab.MeasureStrategy(m, strat, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-22s %12s %12s\n", "", "baseline", "DVFS")
	fmt.Printf("%-22s %11.3fs %11.3fs  (%+.2f%%)\n", "iteration time",
		base.TimeMicros/1e6, dvfs.TimeMicros/1e6, 100*(dvfs.TimeMicros/base.TimeMicros-1))
	fmt.Printf("%-22s %11.2fW %11.2fW  (%+.2f%%)\n", "SoC power",
		base.MeanSoCW, dvfs.MeanSoCW, 100*(dvfs.MeanSoCW/base.MeanSoCW-1))
	fmt.Printf("%-22s %11.2fW %11.2fW  (%+.2f%%)\n", "AICore power",
		base.MeanCoreW, dvfs.MeanCoreW, 100*(dvfs.MeanCoreW/base.MeanCoreW-1))
	fmt.Printf("%-22s %11.2fJ %11.2fJ  (%+.2f%%)\n", "SoC energy/iteration",
		base.EnergySoCJ, dvfs.EnergySoCJ, 100*(dvfs.EnergySoCJ/base.EnergySoCJ-1))
	fmt.Printf("%-22s %11.1fC %11.1fC\n", "die temperature", base.EndTempC, dvfs.EndTempC)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvfs-run:", err)
	os.Exit(1)
}
