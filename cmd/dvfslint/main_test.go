package main

import (
	"strings"
	"testing"
)

// TestRulesListing pins the registered analyzer set and its order: the
// listing is the suite's discoverability surface (-rules list), so an
// added, renamed, or reordered analyzer must show up here — and in
// DESIGN.md §9 — deliberately.
func TestRulesListing(t *testing.T) {
	want := []string{
		"detrand", "floateq", "ctxflow", "lockpair", "goleak", "unitcheck",
		"errsink", "atomicwrite", "respclose", "metricflow", "allocfree", "lockorder",
	}
	listing := rulesListing()
	lines := strings.Split(strings.TrimRight(listing, "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("listing has %d lines, want %d:\n%s", len(lines), len(want), listing)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("line %d %q: want a rule name followed by a description", i, line)
		}
		if fields[0] != want[i] {
			t.Errorf("line %d: rule %q, want %q", i, fields[0], want[i])
		}
	}
}
