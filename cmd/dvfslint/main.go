// Command dvfslint runs the repository's determinism & concurrency
// analyzer suite (internal/lint) over every package in the module and
// prints "file:line: [rule] message" for each unsuppressed finding.
//
// Usage:
//
//	dvfslint [-rules detrand,errsink] [-dir path] [-format text|json|sarif|github]
//	         [-cache dir] [-only dir1,dir2] [-list] [packages]
//
// The optional packages argument is accepted for familiarity ("./...")
// but the tool always analyzes the whole module containing -dir (or
// the working directory); -only restricts analysis and output to the
// listed package directories (dependencies are still type-checked as
// needed). -cache enables the content-hash per-package result cache:
// a warm run re-analyzes only packages whose sources — or whose
// dependencies' sources — changed. -format selects plain text
// (default), a JSON array, SARIF 2.1.0 for code-scanning upload, or
// GitHub ::error workflow commands for inline PR annotations; all
// formats are byte-identical at any -j.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors. Suppress a
// finding with an in-tree justification:
//
//	//lint:allow <rule> <reason>
//
// on the flagged line or the line above (see DESIGN.md §9). -rules list
// (or -list) prints every registered rule with its one-line contract
// and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"npudvfs/internal/lint"
)

// timingsJSON renders the per-analyzer wall-clock totals as one
// compact JSON object line, keyed in execution order (scripts/bench.sh
// embeds it verbatim into the BENCH artifact). A rule that never ran —
// everything served from cache — reports 0.
func timingsJSON(analyzers []*lint.Analyzer, tm *lint.Timings) string {
	ns := tm.NanosByRule()
	parts := make([]string, len(analyzers))
	for i, a := range analyzers {
		parts[i] = fmt.Sprintf("%q:%d", a.Name, ns[a.Name])
	}
	return "{" + strings.Join(parts, ",") + "}\n"
}

// rulesListing renders one line per registered analyzer, in the
// canonical execution order: the name, then its one-line contract.
func rulesListing() string {
	var b strings.Builder
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(&b, "%-11s %s\n", a.Name, a.Doc)
	}
	return b.String()
}

func main() {
	var (
		rules    = flag.String("rules", "all", "comma-separated rule subset to run (e.g. detrand,errsink), all, or list to print the registered rules")
		dir      = flag.String("dir", ".", "directory inside the module to analyze")
		list     = flag.Bool("list", false, "list available rules and exit")
		workers  = flag.Int("j", 0, "worker-pool size for package analysis (0 = min(GOMAXPROCS, 8))")
		format   = flag.String("format", "text", "output format: text, json, sarif, or github")
		cacheDir = flag.String("cache", "", "directory for the per-package result cache (empty = no cache)")
		only     = flag.String("only", "", "comma-separated package directories to analyze (empty = whole module)")
		timings  = flag.String("timings", "", "file to write per-analyzer wall-clock totals as one-line JSON (empty = don't)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dvfslint [-rules r1,r2] [-dir path] [-j n] [-format f] [-cache dir] [-only d1,d2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list || *rules == "list" {
		fmt.Print(rulesListing())
		return
	}
	switch *format {
	case "text", "json", "sarif", "github":
	default:
		fmt.Fprintf(os.Stderr, "dvfslint: unknown -format %q (want text, json, sarif, or github)\n", *format)
		os.Exit(2)
	}
	analyzers, err := lint.SelectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := lint.Options{Workers: *workers, CacheDir: *cacheDir}
	if *timings != "" {
		opts.Timings = lint.NewTimings()
	}
	if strings.TrimSpace(*only) != "" {
		for _, d := range strings.Split(*only, ",") {
			if d = strings.TrimSpace(d); d != "" {
				opts.OnlyDirs = append(opts.OnlyDirs, d)
			}
		}
		if opts.OnlyDirs == nil {
			opts.OnlyDirs = []string{}
		}
	}
	diags, err := lint.RunAllOpts(root, analyzers, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *timings != "" {
		if werr := os.WriteFile(*timings, []byte(timingsJSON(analyzers, opts.Timings)), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(2)
		}
	}
	// Report paths relative to the module root for stable output.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	switch *format {
	case "json":
		err = lint.EncodeJSON(os.Stdout, diags)
	case "sarif":
		err = lint.EncodeSARIF(os.Stdout, analyzers, diags)
	case "github":
		err = lint.EncodeGitHub(os.Stdout, diags)
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dvfslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
