// Command dvfslint runs the repository's determinism & concurrency
// analyzer suite (internal/lint) over every package in the module and
// prints "file:line: [rule] message" for each unsuppressed finding.
//
// Usage:
//
//	dvfslint [-rules detrand,floateq] [-dir path] [-list] [packages]
//
// The optional packages argument is accepted for familiarity ("./...")
// but the tool always analyzes the whole module containing -dir (or
// the working directory). Exit status: 0 clean, 1 findings, 2 usage or
// load errors. Suppress a finding with an in-tree justification:
//
//	//lint:allow <rule> <reason>
//
// on the flagged line or the line above (see DESIGN.md §9).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"npudvfs/internal/lint"
)

func main() {
	var (
		rules   = flag.String("rules", "all", "comma-separated rule subset to run (e.g. detrand,floateq), or all")
		dir     = flag.String("dir", ".", "directory inside the module to analyze")
		list    = flag.Bool("list", false, "list available rules and exit")
		workers = flag.Int("j", 0, "worker-pool size for package analysis (0 = min(GOMAXPROCS, 8))")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dvfslint [-rules r1,r2] [-dir path] [-j n] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.SelectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.RunAllWorkers(root, analyzers, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		// Report paths relative to the module root for stable output.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dvfslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
