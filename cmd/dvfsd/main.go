// Command dvfsd serves the DVFS strategy pipeline over HTTP: operator
// traces in, generated frequency strategies with predicted
// energy/perf deltas out. See internal/server for the API and
// DESIGN.md §8 for how the endpoints map onto the paper's Fig. 1
// pipeline.
//
// Usage:
//
//	dvfsd -addr 127.0.0.1:7077 -workers 2
//	dvfsd -addr 127.0.0.1:0 -addr-file /tmp/dvfsd.addr -load-models resnet50.models.json
//	dvfsd -addr 127.0.0.1:7071 -ring ring.json -node-id n1 -store /var/lib/dvfsd/n1
//
// With -ring and -node-id the daemon joins a consistent-hash cluster:
// it serves the strategies the ring assigns to it and proxies the rest
// to their owners (DESIGN.md §12). With -store it persists every
// acknowledged job to disk and re-enqueues unfinished ones on restart.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting jobs, drains in-flight searches up to -drain, then
// force-cancels whatever remains (searches unwind at GA generation
// boundaries, within milliseconds).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof handlers on the -pprof listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"npudvfs/internal/cluster/jobstore"
	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/experiments"
	"npudvfs/internal/server"
	"npudvfs/internal/traceio"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 2, "concurrent strategy searches")
	queue := flag.Int("queue", 16, "queued jobs beyond the workers before submissions get 503")
	cacheSize := flag.Int("cache", 128, "strategy LRU capacity")
	timeout := flag.Duration("timeout", 10*time.Minute, "default per-job search deadline")
	drain := flag.Duration("drain", time.Minute, "shutdown drain budget before force-cancelling")
	loadModels := flag.String("load-models", "",
		"comma-separated model bundle files (dvfs-run -save-models); jobs for these workloads skip calibration and profiling")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables profiling")
	ringFile := flag.String("ring", "", "cluster ring file (ring.Save format); empty runs single-node")
	nodeID := flag.String("node-id", "", "this daemon's ring member ID; required with -ring")
	storeDir := flag.String("store", "", "durable job-store directory; empty keeps jobs in memory only")
	flag.Parse()

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listener: %w", err))
		}
		fmt.Printf("dvfsd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		// The profiling listener lives for the whole process; it is
		// torn down by process exit, not by the drain sequence.
		//lint:allow goleak process-lifetime pprof listener; profiling must outlive the drain to observe it
		go func() {
			// net/http/pprof registers on http.DefaultServeMux.
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "dvfsd: pprof server:", err)
			}
		}()
	}

	bundles, err := loadBundles(*loadModels)
	if err != nil {
		fatal(err)
	}

	var r *ring.Ring
	if *ringFile != "" {
		r, err = ring.Load(*ringFile)
		if err != nil {
			fatal(err)
		}
	}
	var store jobstore.Store
	if *storeDir != "" {
		prefix := ""
		if *nodeID != "" {
			prefix = *nodeID + "-"
		}
		store, err = jobstore.OpenFS(*storeDir, server.Retention(*workers, *queue), prefix)
		if err != nil {
			fatal(err)
		}
		if n := len(store.Pending()); n > 0 {
			fmt.Printf("dvfsd: recovered %d unfinished job(s) from %s\n", n, *storeDir)
		}
	}

	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		Lab:            experiments.NewLab(),
		Bundles:        bundles,
		Ring:           r,
		NodeID:         *nodeID,
		Store:          store,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("dvfsd: listening on %s (%d workers, queue %d, cache %d)\n",
		bound, *workers, *queue, *cacheSize)
	if r != nil {
		fmt.Printf("dvfsd: cluster node %s in a %d-node ring\n", *nodeID, r.Len())
	}
	for name := range bundles {
		fmt.Printf("dvfsd: warm models loaded for %s\n", name)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("dvfsd: %s, draining (budget %s)\n", s, *drain)
	case err := <-serveErr:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("dvfsd: drain budget exceeded; in-flight searches force-cancelled")
	} else {
		fmt.Println("dvfsd: drained cleanly")
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func loadBundles(paths string) (map[string]*traceio.ModelBundle, error) {
	if strings.TrimSpace(paths) == "" {
		return nil, nil
	}
	out := make(map[string]*traceio.ModelBundle)
	for _, p := range strings.Split(paths, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		b, err := traceio.LoadModels(p)
		if err != nil {
			return nil, fmt.Errorf("loading models %s: %w", p, err)
		}
		if b.Workload == "" {
			return nil, fmt.Errorf("bundle %s names no workload", p)
		}
		out[strings.ToLower(b.Workload)] = b
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvfsd:", err)
	os.Exit(1)
}
