// Command dvfsctl is the operator CLI for the dvfsd strategy service.
//
// Usage:
//
//	dvfsctl [-addr http://127.0.0.1:7077] <command> [flags]
//
// Commands:
//
//	submit   submit a workload (registry name or trace file) and
//	         optionally wait for the strategy
//	status   print one job's status
//	fetch    print (or save) a completed job's strategy JSON
//	bench    time repeated submissions of one request — demonstrates
//	         the strategy cache (first run searches, the rest hit)
//	metrics  dump the daemon's /metrics text
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

func main() {
	addr := "http://127.0.0.1:7077"
	args := os.Args[1:]
	// A single global -addr may precede the subcommand.
	if len(args) >= 2 && (args[0] == "-addr" || args[0] == "--addr") {
		addr = args[1]
		args = args[2:]
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if len(args) == 0 {
		usage()
	}
	c := client.New(addr)
	ctx := context.Background()
	var err error
	switch args[0] {
	case "submit":
		err = runSubmit(ctx, c, args[1:])
	case "status":
		err = runStatus(ctx, c, args[1:])
	case "fetch":
		err = runFetch(ctx, c, args[1:])
	case "bench":
		err = runBench(ctx, c, args[1:])
	case "metrics":
		err = runMetrics(ctx, c)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dvfsctl [-addr URL] {submit|status|fetch|bench|metrics} [flags]")
	os.Exit(2)
}

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("dvfsctl "+name, flag.ExitOnError)
}

// searchFlags registers the SearchSpec knobs on a flag set and returns
// a builder.
func searchFlags(fs *flag.FlagSet) func() traceio.SearchSpec {
	target := fs.Float64("target", 0, "performance loss target (0 = server default 0.02)")
	fai := fs.Float64("fai", 0, "frequency adjustment interval in ms (0 = server default 5)")
	pop := fs.Int("pop", 0, "GA population (0 = server default 200)")
	gens := fs.Int("gens", 0, "GA generations (0 = server default 600)")
	seed := fs.Int64("seed", 0, "GA seed (0 = server default 1)")
	timeoutMs := fs.Int("timeout-ms", 0, "per-job search deadline in ms (0 = server default)")
	return func() traceio.SearchSpec {
		return traceio.SearchSpec{
			TargetLoss: *target, FAIMillis: units.Millis(*fai),
			Pop: *pop, Gens: *gens, Seed: *seed, TimeoutMillis: *timeoutMs,
		}
	}
}

// buildRequest assembles the submission body from -workload/-trace.
func buildRequest(workloadName, tracePath string, spec traceio.SearchSpec) (*traceio.StrategyRequest, error) {
	req := &traceio.StrategyRequest{Search: spec}
	switch {
	case workloadName != "" && tracePath != "":
		return nil, fmt.Errorf("-workload and -trace are mutually exclusive")
	case workloadName != "":
		req.Workload = workloadName
	case tracePath != "":
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			return nil, err
		}
		req.Trace = json.RawMessage(raw)
	default:
		return nil, fmt.Errorf("one of -workload (%s) or -trace FILE is required",
			strings.Join(workload.Names(), ", "))
	}
	return req, nil
}

func runSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := newFlagSet("submit")
	workloadName := fs.String("workload", "", "registry workload name")
	tracePath := fs.String("trace", "", "workload trace JSON file (traceio format)")
	wait := fs.Bool("wait", true, "poll until the job finishes")
	save := fs.String("save", "", "write the strategy JSON to this path (implies -wait)")
	spec := searchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(*workloadName, *tracePath, spec())
	if err != nil {
		return err
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if st.Cached {
		fmt.Printf("job %s: served from cache\n", st.ID)
	} else {
		fmt.Printf("job %s: %s\n", st.ID, st.State)
	}
	if !*wait && *save == "" {
		return nil
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		return err
	}
	return reportJob(st, *save)
}

// reportJob prints the human summary of a finished job and saves the
// strategy when asked.
func reportJob(st *traceio.JobStatus, save string) error {
	if st.State != traceio.JobDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	r := st.Result
	fmt.Printf("workload %s: %d stages, %d SetFreq per iteration, %d evaluations\n",
		r.Workload, r.Stages, r.Switches, r.Evaluations)
	fmt.Printf("predicted: time %+.2f%%  SoC power -%.2f%%  AICore power -%.2f%%\n",
		r.Predicted.PerfLossPct, r.Predicted.SoCSavingPct, r.Predicted.CoreSavingPct)
	fmt.Printf("latency: queue %.0f ms, search %.0f ms\n", st.QueueMillis, st.SearchMillis)
	if save != "" {
		if err := saveStrategy(save, r.Strategy); err != nil {
			return err
		}
		fmt.Printf("strategy written to %s\n", save)
	}
	return nil
}

// saveStrategy re-encodes the wire strategy through traceio so the
// file is byte-identical to what dvfs-run -save-strategy writes for
// the same search — the determinism contract, checkable with diff.
func saveStrategy(path string, raw json.RawMessage) error {
	strat, err := traceio.ReadStrategy(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("served strategy does not parse: %w", err)
	}
	return traceio.SaveStrategy(path, strat)
}

func runStatus(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dvfsctl status JOB_ID")
	}
	st, err := c.Job(ctx, args[0])
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

func runFetch(ctx context.Context, c *client.Client, args []string) error {
	fs := newFlagSet("fetch")
	save := fs.String("save", "", "write the strategy JSON to this path instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dvfsctl fetch [-save FILE] JOB_ID")
	}
	st, err := c.Job(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	if st.State != traceio.JobDone || st.Result == nil {
		return fmt.Errorf("job %s is %s, not done", st.ID, st.State)
	}
	if *save != "" {
		return saveStrategy(*save, st.Result.Strategy)
	}
	fmt.Println(string(st.Result.Strategy))
	return nil
}

func runBench(ctx context.Context, c *client.Client, args []string) error {
	fs := newFlagSet("bench")
	workloadName := fs.String("workload", "", "registry workload name")
	tracePath := fs.String("trace", "", "workload trace JSON file")
	n := fs.Int("n", 5, "resubmissions after the first completes")
	spec := searchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(*workloadName, *tracePath, spec())
	if err != nil {
		return err
	}
	start := time.Now()
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		return err
	}
	if st.State != traceio.JobDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Printf("cold: %s (cached=%v, search %.0f ms)\n",
		time.Since(start).Round(time.Millisecond), st.Cached, st.SearchMillis)
	for i := 0; i < *n; i++ {
		start = time.Now()
		hit, err := c.Submit(ctx, req)
		if err != nil {
			return err
		}
		if hit.State != traceio.JobDone {
			if hit, err = c.Wait(ctx, hit.ID, 0); err != nil {
				return err
			}
		}
		fmt.Printf("resubmit %d: %s (cached=%v)\n",
			i+1, time.Since(start).Round(time.Microsecond), hit.Cached)
	}
	return nil
}

func runMetrics(ctx context.Context, c *client.Client) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
