// Command dvfsctl is the operator CLI for the dvfsd strategy service.
//
// Usage:
//
//	dvfsctl [-addr http://127.0.0.1:7077] [-ring ring.json] <command> [flags]
//
// Commands:
//
//	submit   submit a workload (registry name or trace file) and
//	         optionally wait for the strategy
//	status   print one job's status
//	fetch    print (or save) a completed job's strategy JSON
//	bench    time repeated submissions of one request — demonstrates
//	         the strategy cache (first run searches, the rest hit)
//	owner    print which ring node owns a request's strategy key
//	cluster  print the daemon's /v1/cluster status
//	metrics  dump the daemon's /metrics text
//
// With -ring, submissions are routed directly to the node that owns
// the request's strategy key (falling back to -addr if the owner is
// unreachable); without it every request goes to -addr and the daemon
// forwards as needed. Transient failures (connection errors, 5xx other
// than 503 load shedding) are retried with jittered backoff.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
	"npudvfs/internal/units"
	"npudvfs/internal/workload"
)

// ctl bundles the base client with the optional ring-aware peer set.
type ctl struct {
	base  *client.Client
	rg    *ring.Ring
	peers map[string]*client.Client
}

// newClient returns a retrying client for one daemon address.
func newClient(addr string) *client.Client {
	c := client.New(addr)
	c.Retry = &client.Retry{Attempts: 3}
	return c
}

// forRequest picks the client for one submission: the key owner's node
// when a ring is loaded, else the base daemon.
func (c *ctl) forRequest(req *traceio.StrategyRequest) *client.Client {
	if c.rg == nil {
		return c.base
	}
	key, err := req.Key()
	if err != nil {
		return c.base // let the daemon attribute the 4xx
	}
	if pc, ok := c.peers[c.rg.Owner(key).ID]; ok {
		return pc
	}
	return c.base
}

func main() {
	addr := ""
	ringPath := ""
	args := os.Args[1:]
	// Global -addr/-ring flags may precede the subcommand, in any order.
	for len(args) >= 2 {
		switch args[0] {
		case "-addr", "--addr":
			addr = args[1]
		case "-ring", "--ring":
			ringPath = args[1]
		default:
			goto parsed
		}
		args = args[2:]
	}
parsed:
	var rg *ring.Ring
	if ringPath != "" {
		var err error
		rg, err = ring.Load(ringPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvfsctl:", err)
			os.Exit(1)
		}
	}
	if addr == "" {
		if rg != nil {
			// No explicit daemon: default to the first ring member.
			addr = rg.Nodes()[0].Addr
		} else {
			addr = "http://127.0.0.1:7077"
		}
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if len(args) == 0 {
		usage()
	}
	c := &ctl{base: newClient(addr), rg: rg}
	if rg != nil {
		c.peers = make(map[string]*client.Client)
		for _, n := range rg.Nodes() {
			c.peers[n.ID] = newClient(n.Addr)
		}
	}
	ctx := context.Background()
	var err error
	switch args[0] {
	case "submit":
		err = runSubmit(ctx, c, args[1:])
	case "status":
		err = runStatus(ctx, c.base, args[1:])
	case "fetch":
		err = runFetch(ctx, c.base, args[1:])
	case "bench":
		err = runBench(ctx, c, args[1:])
	case "owner":
		err = runOwner(c, args[1:])
	case "cluster":
		err = runCluster(ctx, c.base)
	case "metrics":
		err = runMetrics(ctx, c.base)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvfsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dvfsctl [-addr URL] [-ring FILE] {submit|status|fetch|bench|owner|cluster|metrics} [flags]")
	os.Exit(2)
}

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("dvfsctl "+name, flag.ExitOnError)
}

// searchFlags registers the SearchSpec knobs on a flag set and returns
// a builder.
func searchFlags(fs *flag.FlagSet) func() traceio.SearchSpec {
	target := fs.Float64("target", 0, "performance loss target (0 = server default 0.02)")
	fai := fs.Float64("fai", 0, "frequency adjustment interval in ms (0 = server default 5)")
	pop := fs.Int("pop", 0, "GA population (0 = server default 200)")
	gens := fs.Int("gens", 0, "GA generations (0 = server default 600)")
	seed := fs.Int64("seed", 0, "GA seed (0 = server default 1)")
	timeoutMs := fs.Int("timeout-ms", 0, "per-job search deadline in ms (0 = server default)")
	return func() traceio.SearchSpec {
		return traceio.SearchSpec{
			TargetLoss: *target, FAIMillis: units.Millis(*fai),
			Pop: *pop, Gens: *gens, Seed: *seed, TimeoutMillis: *timeoutMs,
		}
	}
}

// buildRequest assembles the submission body from -workload/-trace.
func buildRequest(workloadName, tracePath string, spec traceio.SearchSpec) (*traceio.StrategyRequest, error) {
	req := &traceio.StrategyRequest{Search: spec}
	switch {
	case workloadName != "" && tracePath != "":
		return nil, fmt.Errorf("-workload and -trace are mutually exclusive")
	case workloadName != "":
		req.Workload = workloadName
	case tracePath != "":
		raw, err := os.ReadFile(tracePath)
		if err != nil {
			return nil, err
		}
		req.Trace = json.RawMessage(raw)
	default:
		return nil, fmt.Errorf("one of -workload (%s) or -trace FILE is required",
			strings.Join(workload.Names(), ", "))
	}
	return req, nil
}

func runSubmit(ctx context.Context, c *ctl, args []string) error {
	fs := newFlagSet("submit")
	workloadName := fs.String("workload", "", "registry workload name")
	tracePath := fs.String("trace", "", "workload trace JSON file (traceio format)")
	wait := fs.Bool("wait", true, "poll until the job finishes")
	save := fs.String("save", "", "write the strategy JSON to this path (implies -wait)")
	spec := searchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(*workloadName, *tracePath, spec())
	if err != nil {
		return err
	}
	cl := c.forRequest(req)
	st, err := cl.Submit(ctx, req)
	if err != nil {
		return err
	}
	if st.Cached {
		fmt.Printf("job %s: served from cache\n", st.ID)
	} else {
		fmt.Printf("job %s: %s\n", st.ID, st.State)
	}
	if !*wait && *save == "" {
		return nil
	}
	if st, err = cl.Wait(ctx, st.ID, 0); err != nil {
		return err
	}
	return reportJob(st, *save)
}

// reportJob prints the human summary of a finished job and saves the
// strategy when asked.
func reportJob(st *traceio.JobStatus, save string) error {
	if st.State != traceio.JobDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	r := st.Result
	fmt.Printf("workload %s: %d stages, %d SetFreq per iteration, %d evaluations\n",
		r.Workload, r.Stages, r.Switches, r.Evaluations)
	fmt.Printf("predicted: time %+.2f%%  SoC power -%.2f%%  AICore power -%.2f%%\n",
		r.Predicted.PerfLossPct, r.Predicted.SoCSavingPct, r.Predicted.CoreSavingPct)
	fmt.Printf("latency: queue %.0f ms, search %.0f ms\n", st.QueueMillis, st.SearchMillis)
	if save != "" {
		if err := saveStrategy(save, r.Strategy); err != nil {
			return err
		}
		fmt.Printf("strategy written to %s\n", save)
	}
	return nil
}

// saveStrategy re-encodes the wire strategy through traceio so the
// file is byte-identical to what dvfs-run -save-strategy writes for
// the same search — the determinism contract, checkable with diff.
func saveStrategy(path string, raw json.RawMessage) error {
	strat, err := traceio.ReadStrategy(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("served strategy does not parse: %w", err)
	}
	return traceio.SaveStrategy(path, strat)
}

func runStatus(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dvfsctl status JOB_ID")
	}
	st, err := c.Job(ctx, args[0])
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

func runFetch(ctx context.Context, c *client.Client, args []string) error {
	fs := newFlagSet("fetch")
	save := fs.String("save", "", "write the strategy JSON to this path instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dvfsctl fetch [-save FILE] JOB_ID")
	}
	st, err := c.Job(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	if st.State != traceio.JobDone || st.Result == nil {
		return fmt.Errorf("job %s is %s, not done", st.ID, st.State)
	}
	if *save != "" {
		return saveStrategy(*save, st.Result.Strategy)
	}
	fmt.Println(string(st.Result.Strategy))
	return nil
}

func runBench(ctx context.Context, c *ctl, args []string) error {
	fs := newFlagSet("bench")
	workloadName := fs.String("workload", "", "registry workload name")
	tracePath := fs.String("trace", "", "workload trace JSON file")
	n := fs.Int("n", 5, "resubmissions after the first completes")
	spec := searchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(*workloadName, *tracePath, spec())
	if err != nil {
		return err
	}
	cl := c.forRequest(req)
	start := time.Now()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		return err
	}
	if st, err = cl.Wait(ctx, st.ID, 0); err != nil {
		return err
	}
	if st.State != traceio.JobDone {
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Printf("cold: %s (cached=%v, search %.0f ms)\n",
		time.Since(start).Round(time.Millisecond), st.Cached, st.SearchMillis)
	for i := 0; i < *n; i++ {
		start = time.Now()
		hit, err := cl.Submit(ctx, req)
		if err != nil {
			return err
		}
		if hit.State != traceio.JobDone {
			if hit, err = cl.Wait(ctx, hit.ID, 0); err != nil {
				return err
			}
		}
		fmt.Printf("resubmit %d: %s (cached=%v)\n",
			i+1, time.Since(start).Round(time.Microsecond), hit.Cached)
	}
	return nil
}

// runOwner prints which ring node owns a request's strategy key —
// what the smoke tests use to pick a deliberate non-owner to submit
// through.
func runOwner(c *ctl, args []string) error {
	if c.rg == nil {
		return fmt.Errorf("owner requires -ring FILE")
	}
	fs := newFlagSet("owner")
	workloadName := fs.String("workload", "", "registry workload name")
	tracePath := fs.String("trace", "", "workload trace JSON file")
	spec := searchFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(*workloadName, *tracePath, spec())
	if err != nil {
		return err
	}
	key, err := req.Key()
	if err != nil {
		return err
	}
	n := c.rg.Owner(key)
	fmt.Printf("key %s\nowner: %s %s\n", key, n.ID, n.Addr)
	return nil
}

func runCluster(ctx context.Context, c *client.Client) error {
	st, err := c.Cluster(ctx)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}

func runMetrics(ctx context.Context, c *client.Client) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
