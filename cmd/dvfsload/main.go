// Command dvfsload replays deterministic mixed request streams against
// dvfsd and writes the measured QPS/latency/saturation artifact —
// results/BENCH_6.json under the default flags. See internal/loadgen
// for the traffic model and DESIGN.md §11 for how to read the output.
//
// Usage:
//
//	dvfsload                          # self-served in-process daemon, all mixes
//	dvfsload -addr 127.0.0.1:7077     # target an external daemon
//	dvfsload -mixes hot -mode open -rate 200 -duration 5s
//
// Without -addr the tool boots one fresh in-process daemon per mix
// (models built once), so mixes never contaminate each other's
// strategy cache and the queue-depth curves start from empty.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"npudvfs/internal/cluster/ring"
	"npudvfs/internal/experiments"
	"npudvfs/internal/loadgen"
	"npudvfs/internal/server"
	"npudvfs/internal/server/client"
	"npudvfs/internal/traceio"
	"npudvfs/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "target daemon (host:port or URL); empty self-serves an in-process daemon per mix")
	ringFile := flag.String("ring", "", "cluster ring file: route each request to its key's owner node (requires -addr for health checks and scrapes)")
	mixes := flag.String("mixes", "hot,cold,mixed", "comma-separated mixes to run (hot, cold, mixed)")
	mode := flag.String("mode", "closed", "load mode: open (fixed arrival rate) or closed (N concurrent clients)")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/s")
	clients := flag.Int("clients", 4, "closed-loop concurrency")
	duration := flag.Duration("duration", 2*time.Second, "offered-load window per mix")
	seed := flag.Int64("seed", 1, "schedule seed (frozen-seed methodology: same seed, same request stream)")
	workloadName := flag.String("workload", "resnet50", "registry workload to submit")
	pop := flag.Int("pop", 16, "base GA population per request")
	gens := flag.Int("gens", 8, "base GA generations per request")
	poll := flag.Duration("poll", 2*time.Millisecond, "async-chain poll interval")
	scrape := flag.Duration("scrape", 100*time.Millisecond, "mid-run /metrics scrape interval (0 disables)")
	workers := flag.Int("workers", 2, "self-served daemon: concurrent searches")
	queue := flag.Int("queue", 16, "self-served daemon: queue depth before 503")
	loadModels := flag.String("load-models", "", "model bundle file for the self-served daemon (skips the in-process build)")
	out := flag.String("out", "results/BENCH_6.json", "artifact path; empty prints the summary only")
	baseline := flag.String("baseline", "results/BENCH_6_SEED.json", "frozen-seed baseline artifact for *_vs_seed ratios (skipped when absent)")
	benchID := flag.String("bench-id", "BENCH_6", "artifact bench_id")
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	names := strings.Split(*mixes, ",")
	specs := make([]loadgen.Spec, 0, len(names))
	for _, n := range names {
		m, err := loadgen.MixByName(n)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, loadgen.Spec{
			Mix:      m,
			Mode:     loadgen.Mode(*mode),
			Rate:     *rate,
			Clients:  *clients,
			Duration: *duration,
			Seed:     *seed,
			Workload: *workloadName,
			Search:   traceio.SearchSpec{Pop: *pop, Gens: *gens, Seed: *seed},
			Poll:     *poll,
			Scrape:   *scrape,
		})
	}

	cfg := loadgen.ArtifactConfig{
		Workload: *workloadName,
		Seed:     *seed,
		Mode:     *mode,
		Duration: duration.String(),
		Pop:      *pop,
		Gens:     *gens,
	}
	if *mode == string(loadgen.OpenLoop) {
		cfg.Rate = *rate
	} else {
		cfg.Clients = *clients
	}

	var rg *ring.Ring
	if *ringFile != "" {
		if *addr == "" {
			fatal(fmt.Errorf("-ring requires -addr (a node for health checks and metric scrapes)"))
		}
		var err error
		rg, err = ring.Load(*ringFile)
		if err != nil {
			fatal(err)
		}
	}

	var runs []*loadgen.Result
	if *addr != "" {
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		cfg.Addr = base
		c := client.New(base)
		if err := c.Health(ctx); err != nil {
			fatal(fmt.Errorf("daemon at %s not healthy: %w", base, err))
		}
		for _, spec := range specs {
			r, err := runOne(ctx, c, rg, spec)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, r)
		}
	} else {
		cfg.Workers = *workers
		cfg.QueueDepth = *queue
		lab, bundle, err := buildBundle(*workloadName, *loadModels)
		if err != nil {
			fatal(err)
		}
		for _, spec := range specs {
			r, err := selfServe(ctx, lab, bundle, *workloadName, *workers, *queue, spec)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, r)
		}
	}

	art := &loadgen.Artifact{
		BenchID:     *benchID,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Config:      cfg,
		Runs:        runs,
	}
	if *baseline != "" {
		if base, err := loadgen.LoadArtifact(*baseline); err == nil {
			art.ApplyBaseline(base)
		} else if !os.IsNotExist(err) {
			fatal(fmt.Errorf("baseline %s: %w", *baseline, err))
		}
	}
	if *out != "" {
		if err := art.WriteArtifact(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("dvfsload: wrote %s\n", *out)
	}
}

// runOne executes one mix and prints its summary line.
func runOne(ctx context.Context, c *client.Client, rg *ring.Ring, spec loadgen.Spec) (*loadgen.Result, error) {
	fmt.Printf("dvfsload: mix %-5s %s ", spec.Mix.Name, spec.Mode)
	if spec.Mode == loadgen.OpenLoop {
		fmt.Printf("rate=%g/s ", spec.Rate)
	} else {
		fmt.Printf("clients=%d ", spec.Clients)
	}
	fmt.Printf("for %s...\n", spec.Duration)
	res, err := (&loadgen.Runner{Client: c, Spec: spec, Ring: rg}).Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("mix %s: %w", spec.Mix.Name, err)
	}
	o := res.Overall
	fmt.Printf("dvfsload:   qps=%.1f p50=%.2fms p90=%.2fms p99=%.2fms completed=%d rejects=%d errors=%d max_queue=%d\n",
		res.QPS, float64(o.P50Ms), float64(o.P90Ms), float64(o.P99Ms),
		o.Completed, o.Rejects, o.Errors, res.MaxQueueDepth)
	return res, nil
}

// selfServe boots a fresh in-process daemon, runs the mix against it
// over a loopback listener, and drains it.
func selfServe(ctx context.Context, lab *experiments.Lab, bundle *traceio.ModelBundle,
	workloadName string, workers, queue int, spec loadgen.Spec) (*loadgen.Result, error) {
	srv, err := server.New(server.Config{
		Workers:    workers,
		QueueDepth: queue,
		Lab:        lab,
		Bundles:    map[string]*traceio.ModelBundle{workloadName: bundle},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//lint:allow goleak serve goroutine exits on the Close below, within this function's lifetime
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		drain, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(drain)
		_ = srv.Shutdown(drain)
		_ = httpSrv.Close()
	}()
	return runOne(ctx, client.New("http://"+ln.Addr().String()), nil, spec)
}

// buildBundle loads the model bundle from disk or fits it in-process.
func buildBundle(workloadName, path string) (*experiments.Lab, *traceio.ModelBundle, error) {
	lab := experiments.NewLab()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		b, err := traceio.ReadModels(f)
		if err != nil {
			return nil, nil, fmt.Errorf("load models %s: %w", path, err)
		}
		return lab, b, nil
	}
	fmt.Printf("dvfsload: fitting %s models in-process (use -load-models to skip)\n", workloadName)
	m, err := workload.ByName(workloadName)
	if err != nil {
		return nil, nil, err
	}
	ms, err := lab.BuildModels(m, true)
	if err != nil {
		return nil, nil, err
	}
	b, err := ms.Bundle()
	if err != nil {
		return nil, nil, err
	}
	return lab, b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvfsload:", err)
	os.Exit(1)
}
