// Command experiments regenerates the paper's tables and figures on
// the simulated NPU.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3,fig9,table3 -parallel 4
//
// Available experiments: fig3, fig4, fig9, fig10, fig15, fig16, fig17,
// fig18, table2, table3, fitcost, inference, throughput, coarse,
// modelfree, uncore, sensitivity, adaptive, dual, faisweep, seeds,
// pareto, attribution, search.
//
// Reports go to stdout in canonical registry order; per-experiment
// wall times go to stderr, so the stdout stream (and -out files) are
// byte-identical whether experiments run serially or in parallel.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"npudvfs/internal/experiments"
	"npudvfs/internal/plot"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	outDir := flag.String("out", "", "also write each experiment's report to <out>/<name>.txt")
	svgDir := flag.String("svg", "", "render SVG figures for chartable experiments into this directory")
	parallel := flag.Int("parallel", 1, "run up to N experiments concurrently (results stay in canonical order)")
	timeout := flag.Duration("timeout", 0, "per-experiment timeout, e.g. 90s or 5m (0 = none)")
	flag.Parse()
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var names []string
	if *run != "all" {
		names = strings.Split(*run, ",")
	}

	// ^C cancels cleanly: unstarted experiments are skipped and every
	// running search unwinds at its next generation boundary, so the
	// reports already written to stdout stay intact.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	lab := experiments.NewLab()
	lab.Parallel = *parallel
	start := time.Now()
	outcomes, err := lab.RunSuiteContext(ctx, names, *parallel, *timeout)
	if err != nil {
		// An interrupted run still reports whatever finished; anything
		// else (unknown names, ...) is fatal before any work ran.
		if ctx.Err() == nil || len(outcomes) == 0 {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
	}

	failed := 0
	for _, o := range outcomes {
		if o.Name == "" {
			continue // skipped after interrupt: never ran
		}
		fmt.Fprintf(os.Stderr, "%s: %.1fs\n", o.Name, o.Elapsed.Seconds())
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: %v\n", o.Name, o.Err)
			continue
		}
		report := fmt.Sprintf("=== %s ===\n%s\n", o.Name, o.Report)
		fmt.Print(report)
		if *svgDir != "" {
			if err := renderSVGs(*svgDir, o.Name, o.Result); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", o.Name, err)
				os.Exit(1)
			}
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, o.Name+".txt")
			if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", o.Name, err)
				os.Exit(1)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total: %.1fs (%d experiments, parallel=%d)\n",
		time.Since(start).Seconds(), len(outcomes), *parallel)
	if failed > 0 || err != nil {
		os.Exit(1)
	}
}

// chartable results expose a single figure.
type chartable interface{ Chart() *plot.Chart }

// multiChartable results expose several panels.
type multiChartable interface{ Charts() []*plot.Chart }

// renderSVGs writes any figures the result can draw.
func renderSVGs(dir, name string, res fmt.Stringer) error {
	switch r := res.(type) {
	case multiChartable:
		for i, c := range r.Charts() {
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.svg", name, i+1))
			if err := plot.Save(path, c); err != nil {
				return err
			}
		}
	case chartable:
		return plot.Save(filepath.Join(dir, name+".svg"), r.Chart())
	}
	return nil
}
