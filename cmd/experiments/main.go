// Command experiments regenerates the paper's tables and figures on
// the simulated NPU.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3,fig9,table3
//
// Available experiments: fig3, fig4, fig9, fig10, fig15, fig16, fig17,
// fig18, table2, table3, fitcost, inference, throughput, coarse,
// modelfree, uncore, sensitivity, adaptive, dual, faisweep, seeds,
// pareto, attribution, search.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"npudvfs/internal/experiments"
	"npudvfs/internal/plot"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment names, or 'all'")
	outDir := flag.String("out", "", "also write each experiment's report to <out>/<name>.txt")
	svgDir := flag.String("svg", "", "render SVG figures for chartable experiments into this directory")
	flag.Parse()
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	lab := experiments.NewLab()
	type experiment struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{"fig3", func() (fmt.Stringer, error) { return lab.Fig3(), nil }},
		{"fig4", func() (fmt.Stringer, error) { return lab.Fig4(), nil }},
		{"fig9", func() (fmt.Stringer, error) { return lab.Fig9(), nil }},
		{"fig10", func() (fmt.Stringer, error) { return lab.Fig10() }},
		{"fig15", func() (fmt.Stringer, error) { return lab.Fig15() }},
		{"fig16", func() (fmt.Stringer, error) { return lab.Fig16() }},
		{"fig17", func() (fmt.Stringer, error) { return lab.Fig17() }},
		{"fig18", func() (fmt.Stringer, error) { return lab.Fig18() }},
		{"table2", func() (fmt.Stringer, error) { return lab.Table2() }},
		{"table3", func() (fmt.Stringer, error) { return lab.Table3() }},
		{"fitcost", func() (fmt.Stringer, error) { return lab.FitCost() }},
		{"inference", func() (fmt.Stringer, error) { return lab.Inference() }},
		{"throughput", func() (fmt.Stringer, error) { return lab.ScoringThroughput(20000) }},
		{"coarse", func() (fmt.Stringer, error) { return lab.CoarseGrained() }},
		{"modelfree", func() (fmt.Stringer, error) { return lab.ModelFree(300) }},
		{"uncore", func() (fmt.Stringer, error) { return lab.UncoreDVFS() }},
		{"sensitivity", func() (fmt.Stringer, error) { return lab.Sensitivity(1800, 1600), nil }},
		{"adaptive", func() (fmt.Stringer, error) { return lab.Adaptive() }},
		{"dual", func() (fmt.Stringer, error) { return lab.DualDomain() }},
		{"faisweep", func() (fmt.Stringer, error) { return lab.FAISweep() }},
		{"seeds", func() (fmt.Stringer, error) { return lab.SeedsRobustness(5) }},
		{"pareto", func() (fmt.Stringer, error) { return lab.Pareto() }},
		{"attribution", func() (fmt.Stringer, error) { return lab.Attribution(0.10) }},
		{"search", func() (fmt.Stringer, error) { return lab.SearchAblation() }},
	}

	want := map[string]bool{}
	all := *run == "all"
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		report := fmt.Sprintf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(start).Seconds(), res)
		fmt.Print(report)
		if *svgDir != "" {
			if err := renderSVGs(*svgDir, e.name, res); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, e.name+".txt")
			if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q\n", *run)
		os.Exit(2)
	}
}

// chartable results expose a single figure.
type chartable interface{ Chart() *plot.Chart }

// multiChartable results expose several panels.
type multiChartable interface{ Charts() []*plot.Chart }

// renderSVGs writes any figures the result can draw.
func renderSVGs(dir, name string, res fmt.Stringer) error {
	switch r := res.(type) {
	case multiChartable:
		for i, c := range r.Charts() {
			path := filepath.Join(dir, fmt.Sprintf("%s-%d.svg", name, i+1))
			if err := plot.Save(path, c); err != nil {
				return err
			}
		}
	case chartable:
		return plot.Save(filepath.Join(dir, name+".svg"), r.Chart())
	}
	return nil
}
