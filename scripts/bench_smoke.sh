#!/usr/bin/env bash
# bench_smoke.sh — CI benchmark smoke: every benchmark in the repo
# compiles and runs for one iteration, and the perf contracts that are
# cheap to check at 1x are asserted:
#
#   - BenchmarkGASearch reports 0 allocs/op: the Engine-reuse serving
#     path must stay GC-quiet (DESIGN.md §13). A regression here is a
#     correctness-of-intent bug long before it is a latency bug.
#
# Wall-clock-dependent floors (the 2x search speedup, the 1->4 worker
# scaling) are asserted by scripts/bench.sh, which measures properly.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench . -benchtime 1x -benchmem ./... 2>&1) || {
    echo "$out"
    exit 1
}
echo "$out"

line=$(echo "$out" | grep -E '^BenchmarkGASearch(-[0-9]+)?[[:space:]]' | head -1)
if [ -z "$line" ]; then
    echo "bench-smoke: BenchmarkGASearch missing from benchmark output" >&2
    exit 1
fi
allocs=$(echo "$line" | awk '{for (i = 1; i < NF; i++) if ($(i + 1) == "allocs/op") print $i}')
if [ "$allocs" != "0" ]; then
    echo "bench-smoke: BenchmarkGASearch reports $allocs allocs/op, want 0 (Engine reuse contract)" >&2
    exit 1
fi
echo "bench-smoke: BenchmarkGASearch allocation-free"
