#!/usr/bin/env bash
# load_smoke.sh — bounded end-to-end smoke of the dvfsload harness.
#
# Fits the resnet50 model bundle once (via dvfs-run), replays the
# three canonical request mixes for ~1 s each against fresh in-process
# daemons, and asserts the emitted artifact is sane:
#   1. every requested mix produced a run,
#   2. every run made progress (non-zero QPS),
#   3. no hard errors (503 load shedding is allowed; 5xx is not).
# The offered-load window is what is bounded here; the model fit is a
# fixed cost shared with serve-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() { echo "load-smoke: FAIL: $*" >&2; exit 1; }

echo "load-smoke: building dvfsload, dvfs-run"
go build -o "$tmp/dvfsload" ./cmd/dvfsload
go build -o "$tmp/dvfs-run" ./cmd/dvfs-run

echo "load-smoke: fitting the resnet50 model bundle"
"$tmp/dvfs-run" -model resnet50 -pop 16 -gens 8 -seed 7 \
    -save-models "$tmp/models.json" -no-measure >/dev/null

echo "load-smoke: replaying hot,cold,mixed for 1s each (in-process daemons)"
"$tmp/dvfsload" -load-models "$tmp/models.json" -duration 1s -clients 3 \
    -out "$tmp/bench.json" -baseline ""

for mix in hot cold mixed; do
    grep -q "\"mix\": \"$mix\"" "$tmp/bench.json" \
        || fail "mix $mix missing from artifact:"$'\n'"$(cat "$tmp/bench.json")"
done
grep -q '"qps": 0,' "$tmp/bench.json" \
    && fail "a run made no progress:"$'\n'"$(cat "$tmp/bench.json")" || true
grep -q '"errors": [1-9]' "$tmp/bench.json" \
    && fail "hard errors in artifact:"$'\n'"$(cat "$tmp/bench.json")" || true
echo "load-smoke: PASS"
