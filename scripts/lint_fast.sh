#!/usr/bin/env bash
# lint_fast.sh — changed-packages-only dvfslint for local iteration.
#
# Collects every .go file that differs from HEAD (staged, unstaged and
# untracked), maps them to their package directories, and runs dvfslint
# with -only over just that set. Dependencies of the changed packages
# are still loaded and type-checked so interprocedural facts stay
# correct, and the shared content-hash cache (.cache/dvfslint) makes
# the untouched part of the graph near-free. With no changed Go files
# there is nothing to lint and the script exits 0 immediately.
#
# This is a convenience for tight edit/lint loops; `make lint` (the
# whole module) remains the CI gate.
set -euo pipefail
cd "$(dirname "$0")/.."

changed=$( (git diff --name-only HEAD -- '*.go';
            git ls-files --others --exclude-standard -- '*.go') | sort -u)

if [ -z "$changed" ]; then
    echo "lint-fast: no changed Go files"
    exit 0
fi

dirs=$(echo "$changed" | while read -r f; do
    # A deleted file still appears in the diff; lint the directory only
    # if it still holds sources.
    d=$(dirname "$f")
    [ -d "$d" ] && echo "$d"
done | sort -u | paste -sd, -)

if [ -z "$dirs" ]; then
    echo "lint-fast: changed files' directories no longer exist"
    exit 0
fi

echo "lint-fast: $dirs"
go run ./cmd/dvfslint -cache .cache/dvfslint -only "$dirs"
