#!/usr/bin/env bash
# bench.sh — run the hot-path benchmarks and emit results/BENCH_10.json.
#
# Runs the perf-engineering benchmarks (Score, ScoreBatch,
# GAGeneration, GASearch, GASearchScaling, ExecutorRun — see
# bench_test.go and DESIGN.md §10/§13) with -benchmem and converts
# `go test` output into a JSON document of {ns_per_op, allocs_per_op,
# bytes_per_op, extra metrics}. When the frozen seed baseline
# results/BENCH_5_SEED.json is present, a speedup_vs_seed ratio
# (seed ns/op ÷ current ns/op) is computed per benchmark.
#
# The ga_scaling section records the island engine's evals/sec at 1,
# 2, 4 and 8 workers (8 islands), plus the 1→4-worker speedup and its
# parallel efficiency. On a host with GOMAXPROCS ≥ 4 the script
# asserts the speedup reaches 1.6× (the ISSUE 10 scaling floor); on
# smaller hosts the workers serialize and the assertion is skipped.
#
# Usage: scripts/bench.sh [-benchtime 2s]
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-2s}"
out=results/BENCH_10.json
seed=results/BENCH_5_SEED.json

# Lint wall-clock: time a cold (empty cache) and a warm (fully cached)
# dvfslint pass over the module. The pair is the cache's whole value
# proposition, so the benchmark artifact records both. A prebuilt
# binary keeps `go run` compilation out of the measurement.
lintbin=$(mktemp -d)/dvfslint
lintcache=$(mktemp -d)
trap 'rm -rf "$(dirname "$lintbin")" "$lintcache"' EXIT
go build -o "$lintbin" ./cmd/dvfslint
linttimings="$lintcache/timings.json"
t0=$(date +%s%N)
"$lintbin" -cache "$lintcache" -timings "$linttimings" >/dev/null
t1=$(date +%s%N)
"$lintbin" -cache "$lintcache" >/dev/null
t2=$(date +%s%N)
lint_cold_ms=$(( (t1 - t0) / 1000000 ))
lint_warm_ms=$(( (t2 - t1) / 1000000 ))
# Per-analyzer wall-clock breakdown of the cold pass, as one compact
# JSON object emitted by dvfslint -timings.
lint_analyzer_ns=$(tr -d '\n' < "$linttimings")
echo "dvfslint: cold ${lint_cold_ms}ms, warm ${lint_warm_ms}ms"

procs=$(nproc)

raw=$(go test -run '^$' \
    -bench 'BenchmarkScore$|BenchmarkScoreBatch$|BenchmarkGAGeneration$|BenchmarkGASearch$|BenchmarkGASearchScaling$|BenchmarkExecutorRun$' \
    -benchmem -benchtime "$benchtime" .)
echo "$raw"

echo "$raw" | awk -v seedfile="$seed" -v procs="$procs" \
    -v lintcold="$lint_cold_ms" -v lintwarm="$lint_warm_ms" \
    -v lintns="$lint_analyzer_ns" '
BEGIN {
    nseed = 0
    if ((getline line < seedfile) >= 0) {
        buf = line
        while ((getline line < seedfile) > 0) buf = buf "\n" line
        close(seedfile)
        # Minimal extraction: "name": {... "ns_per_op": N ...}
        while (match(buf, /"Benchmark[A-Za-z]+": *\{[^}]*\}/)) {
            entry = substr(buf, RSTART, RLENGTH)
            buf = substr(buf, RSTART + RLENGTH)
            if (match(entry, /"Benchmark[A-Za-z]+"/)) {
                name = substr(entry, RSTART + 1, RLENGTH - 2)
            }
            if (match(entry, /"ns_per_op": *[0-9.eE+-]+/)) {
                v = substr(entry, RSTART, RLENGTH)
                sub(/^"ns_per_op": */, "", v)
                seedns[name] = v + 0
                nseed++
            }
        }
    }
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix on multi-core hosts
    n = 0
    delete f
    f["iterations"] = $2 + 0
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        val = $i + 0
        if (unit == "ns/op") f["ns_per_op"] = val
        else if (unit == "B/op") f["bytes_per_op"] = val
        else if (unit == "allocs/op") f["allocs_per_op"] = val
        else { gsub(/[^A-Za-z0-9_]/, "_", unit); f[unit] = val }
    }
    names[++nb] = name
    for (k in f) vals[name, k] = f[k]
    keys[name] = ""
    for (k in f) keys[name] = keys[name] k "\n"
}
END {
    printf "{\n"
    printf "  \"bench_id\": \"BENCH_10\",\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"'"$benchtime"'\",\n"
    printf "  \"benchmarks\": {\n"
    for (b = 1; b <= nb; b++) {
        name = names[b]
        printf "    \"%s\": {", name
        first = 1
        split(keys[name], ks, "\n")
        for (ki in ks) {
            k = ks[ki]
            if (k == "") continue
            if (!first) printf ", "
            printf "\"%s\": %g", k, vals[name, k]
            first = 0
        }
        if (name in seedns && vals[name, "ns_per_op"] > 0) {
            printf ", \"speedup_vs_seed\": %.3f", seedns[name] / vals[name, "ns_per_op"]
        }
        printf "}%s\n", (b < nb ? "," : "")
    }
    printf "  },\n"
    w1 = vals["BenchmarkGASearchScaling/workers=1", "evals_s"] + 0
    w2 = vals["BenchmarkGASearchScaling/workers=2", "evals_s"] + 0
    w4 = vals["BenchmarkGASearchScaling/workers=4", "evals_s"] + 0
    w8 = vals["BenchmarkGASearchScaling/workers=8", "evals_s"] + 0
    printf "  \"ga_scaling\": {\"gomaxprocs\": %d", procs
    printf ", \"workers_1_evals_per_sec\": %g", w1
    printf ", \"workers_2_evals_per_sec\": %g", w2
    printf ", \"workers_4_evals_per_sec\": %g", w4
    printf ", \"workers_8_evals_per_sec\": %g", w8
    if (w1 > 0) {
        printf ", \"speedup_1_to_4\": %.3f", w4 / w1
        printf ", \"parallel_efficiency_4\": %.3f", w4 / (4 * w1)
    }
    printf "},\n"
    if (lintns == "") lintns = "{}"
    printf "  \"lint\": {\"cold_ms\": %d, \"warm_ms\": %d, \"analyzer_ns\": %s}\n", lintcold, lintwarm, lintns
    printf "}\n"
}' > "$out"

echo "wrote $out"
cat "$out"

# Scaling floor (ISSUE 10): with ≥4 cores the 8-island search must
# reach 1.6× evals/sec going from 1 to 4 workers. Single-core hosts
# serialize the workers, so the curve is flat there by construction.
if [ "$procs" -ge 4 ]; then
    awk '
    /"speedup_1_to_4"/ {
        if (match($0, /"speedup_1_to_4": *[0-9.]+/)) {
            v = substr($0, RSTART, RLENGTH)
            sub(/^"speedup_1_to_4": */, "", v)
            if (v + 0 < 1.6) {
                printf "bench: 1->4 worker scaling %.3fx below the 1.6x floor\n", v + 0
                exit 1
            }
            printf "bench: 1->4 worker scaling %.3fx (floor 1.6x)\n", v + 0
        }
    }' "$out"
fi
