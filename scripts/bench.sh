#!/usr/bin/env bash
# bench.sh — run the hot-path benchmarks and emit results/BENCH_5.json.
#
# Runs the four perf-engineering benchmarks (Score, GAGeneration,
# GASearch, ExecutorRun — see bench_test.go and DESIGN.md §10) with
# -benchmem and converts `go test` output into a JSON document of
# {ns_per_op, allocs_per_op, bytes_per_op, extra metrics}. When the
# frozen seed baseline results/BENCH_5_SEED.json is present, a
# speedup_vs_seed ratio (seed ns/op ÷ current ns/op) is computed per
# benchmark.
#
# Usage: scripts/bench.sh [-benchtime 2s]
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-2s}"
out=results/BENCH_5.json
seed=results/BENCH_5_SEED.json

# Lint wall-clock: time a cold (empty cache) and a warm (fully cached)
# dvfslint pass over the module. The pair is the cache's whole value
# proposition, so the benchmark artifact records both. A prebuilt
# binary keeps `go run` compilation out of the measurement.
lintbin=$(mktemp -d)/dvfslint
lintcache=$(mktemp -d)
trap 'rm -rf "$(dirname "$lintbin")" "$lintcache"' EXIT
go build -o "$lintbin" ./cmd/dvfslint
linttimings="$lintcache/timings.json"
t0=$(date +%s%N)
"$lintbin" -cache "$lintcache" -timings "$linttimings" >/dev/null
t1=$(date +%s%N)
"$lintbin" -cache "$lintcache" >/dev/null
t2=$(date +%s%N)
lint_cold_ms=$(( (t1 - t0) / 1000000 ))
lint_warm_ms=$(( (t2 - t1) / 1000000 ))
# Per-analyzer wall-clock breakdown of the cold pass, as one compact
# JSON object emitted by dvfslint -timings.
lint_analyzer_ns=$(tr -d '\n' < "$linttimings")
echo "dvfslint: cold ${lint_cold_ms}ms, warm ${lint_warm_ms}ms"

raw=$(go test -run '^$' \
    -bench 'BenchmarkScore$|BenchmarkGAGeneration$|BenchmarkGASearch$|BenchmarkExecutorRun$' \
    -benchmem -benchtime "$benchtime" .)
echo "$raw"

echo "$raw" | awk -v seedfile="$seed" \
    -v lintcold="$lint_cold_ms" -v lintwarm="$lint_warm_ms" \
    -v lintns="$lint_analyzer_ns" '
BEGIN {
    nseed = 0
    if ((getline line < seedfile) >= 0) {
        buf = line
        while ((getline line < seedfile) > 0) buf = buf "\n" line
        close(seedfile)
        # Minimal extraction: "name": {... "ns_per_op": N ...}
        while (match(buf, /"Benchmark[A-Za-z]+": *\{[^}]*\}/)) {
            entry = substr(buf, RSTART, RLENGTH)
            buf = substr(buf, RSTART + RLENGTH)
            if (match(entry, /"Benchmark[A-Za-z]+"/)) {
                name = substr(entry, RSTART + 1, RLENGTH - 2)
            }
            if (match(entry, /"ns_per_op": *[0-9.eE+-]+/)) {
                v = substr(entry, RSTART, RLENGTH)
                sub(/^"ns_per_op": */, "", v)
                seedns[name] = v + 0
                nseed++
            }
        }
    }
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^Benchmark/ {
    name = $1
    n = 0
    delete f
    f["iterations"] = $2 + 0
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        val = $i + 0
        if (unit == "ns/op") f["ns_per_op"] = val
        else if (unit == "B/op") f["bytes_per_op"] = val
        else if (unit == "allocs/op") f["allocs_per_op"] = val
        else { gsub(/[^A-Za-z0-9_]/, "_", unit); f[unit] = val }
    }
    names[++nb] = name
    for (k in f) vals[name, k] = f[k]
    keys[name] = ""
    for (k in f) keys[name] = keys[name] k "\n"
}
END {
    printf "{\n"
    printf "  \"bench_id\": \"BENCH_5\",\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"'"$benchtime"'\",\n"
    printf "  \"benchmarks\": {\n"
    for (b = 1; b <= nb; b++) {
        name = names[b]
        printf "    \"%s\": {", name
        first = 1
        split(keys[name], ks, "\n")
        for (ki in ks) {
            k = ks[ki]
            if (k == "") continue
            if (!first) printf ", "
            printf "\"%s\": %g", k, vals[name, k]
            first = 0
        }
        if (name in seedns && vals[name, "ns_per_op"] > 0) {
            printf ", \"speedup_vs_seed\": %.3f", seedns[name] / vals[name, "ns_per_op"]
        }
        printf "}%s\n", (b < nb ? "," : "")
    }
    printf "  },\n"
    if (lintns == "") lintns = "{}"
    printf "  \"lint\": {\"cold_ms\": %d, \"warm_ms\": %d, \"analyzer_ns\": %s}\n", lintcold, lintwarm, lintns
    printf "}\n"
}' > "$out"

echo "wrote $out"
cat "$out"
