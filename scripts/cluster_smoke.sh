#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of the sharded dvfsd cluster
# (DESIGN.md §12).
#
# Boots a 3-node ring with durable fs job stores and asserts:
#   1. a submission to a NON-owner node is forwarded to the key's ring
#      owner (job ID carries the owner's prefix; /metrics counts the
#      out/in forward pair) and the served strategy is byte-identical
#      to the cmd/dvfs-run batch path,
#   2. cache locality: a ring-aware resubmission (dvfsctl -ring) goes
#      straight to the owner and hits its strategy cache,
#   3. crash recovery: SIGKILL the owner mid-search, restart it over
#      the same store directory, and every acknowledged job still
#      reaches done — including jobs that never got to run.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

echo "cluster-smoke: building dvfsd, dvfsctl, dvfsload, dvfs-run, freeports"
go build -o "$tmp/dvfsd" ./cmd/dvfsd
go build -o "$tmp/dvfsctl" ./cmd/dvfsctl
go build -o "$tmp/dvfsload" ./cmd/dvfsload
go build -o "$tmp/dvfs-run" ./cmd/dvfs-run
go build -o "$tmp/freeports" ./scripts/freeports

echo "cluster-smoke: batch reference run (also saves the model bundle)"
"$tmp/dvfs-run" -model resnet50 -pop 16 -gens 8 -seed 7 \
    -save-models "$tmp/models.json" -save-strategy "$tmp/batch.json" -no-measure >/dev/null

# The ring file must exist before any daemon boots, so node addresses
# are fixed up front instead of dvfsd's usual port-0 + addr-file dance.
ports=($("$tmp/freeports" 3))
ring="$tmp/ring.json"
cat >"$ring" <<EOF
{
 "version": 1,
 "vnodes": 64,
 "nodes": [
  {"id": "n1", "addr": "http://127.0.0.1:${ports[0]}"},
  {"id": "n2", "addr": "http://127.0.0.1:${ports[1]}"},
  {"id": "n3", "addr": "http://127.0.0.1:${ports[2]}"}
 ]
}
EOF

# addr_of ID -> http URL from the ring file.
addr_of() { grep -o "\"id\": \"$1\", \"addr\": \"[^\"]*\"" "$ring" | sed 's/.*"addr": "//;s/"//'; }

start_node() { # start_node ID PORT
    "$tmp/dvfsd" -addr "127.0.0.1:$2" -workers 1 -ring "$ring" -node-id "$1" \
        -store "$tmp/store-$1" -load-models "$tmp/models.json" \
        >>"$tmp/$1.log" 2>&1 &
    pids="$pids $!"
    eval "pid_$1=$!"
}

wait_healthy() { # wait_healthy ID
    local url; url=$(addr_of "$1")
    for _ in $(seq 1 100); do
        "$tmp/dvfsctl" -addr "$url" metrics >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    cat "$tmp/$1.log" >&2
    fail "node $1 at $url never became healthy"
}

echo "cluster-smoke: starting 3 nodes"
start_node n1 "${ports[0]}"
start_node n2 "${ports[1]}"
start_node n3 "${ports[2]}"
for n in n1 n2 n3; do wait_healthy "$n"; done

echo "cluster-smoke: cluster endpoint sees all 3 members"
members=$("$tmp/dvfsctl" -addr "$(addr_of n1)" cluster | grep -c '"id": "n[123]"')
[ "$members" -eq 3 ] || fail "/v1/cluster reports $members members, want 3"

# Find the ring owner of the reference request, then deliberately
# submit through a different node to exercise the proxy path.
owner=$("$tmp/dvfsctl" -ring "$ring" owner -workload resnet50 -pop 16 -gens 8 -seed 7 \
    | sed -n 's/^owner: \(n[0-9]*\) .*/\1/p')
[ -n "$owner" ] || fail "dvfsctl owner printed no owner"
nonowner=$(printf 'n1\nn2\nn3\n' | grep -v "^$owner\$" | head -1)
echo "cluster-smoke: key owner is $owner; submitting via non-owner $nonowner"

submit_out=$("$tmp/dvfsctl" -addr "$(addr_of "$nonowner")" submit \
    -workload resnet50 -pop 16 -gens 8 -seed 7 -save "$tmp/served.json")
job_id=$(echo "$submit_out" | sed -n 's/^job \([^:]*\):.*/\1/p' | head -1)
case "$job_id" in
"$owner"-*) ;;
*) fail "job ID $job_id does not carry owner prefix $owner-" ;;
esac

diff -u "$tmp/batch.json" "$tmp/served.json" \
    || fail "strategy served through the cluster differs from the batch path"
echo "cluster-smoke: forwarded job $job_id matches the batch path byte-for-byte"

# forwards_of ID DIRECTION -> counter value (0 when never emitted).
# Submission and every status poll each count one forward, so the
# assertions compare values, not exact counts.
forwards_of() {
    "$tmp/dvfsctl" -addr "$(addr_of "$1")" metrics \
        | sed -n "s/^dvfsd_cluster_forwards_total{direction=\"$2\"} //p" | grep . || echo 0
}
out_before=$(forwards_of "$nonowner" out)
[ "$out_before" -ge 1 ] || fail "non-owner $nonowner does not count the outbound forward"
[ "$(forwards_of "$owner" in)" -ge 1 ] || fail "owner $owner does not count the inbound forward"

echo "cluster-smoke: ring-aware resubmission must hit the owner's cache"
resubmit=$("$tmp/dvfsctl" -ring "$ring" submit -workload resnet50 -pop 16 -gens 8 -seed 7)
echo "$resubmit" | grep -q 'served from cache' \
    || fail "ring-aware resubmission missed the cache:"$'\n'"$resubmit"
"$tmp/dvfsctl" -addr "$(addr_of "$owner")" metrics \
    | grep -q 'dvfsd_cache_hits_total 1' \
    || fail "owner $owner does not count the cache hit"
# Direct-to-owner submission: the non-owner's forward counter must not
# have moved again.
[ "$(forwards_of "$nonowner" out)" -eq "$out_before" ] \
    || fail "ring-aware submit went through $nonowner instead of straight to the owner"

echo "cluster-smoke: mixed dvfsload stream across the ring"
load_out=$("$tmp/dvfsload" -addr "$(addr_of n1)" -ring "$ring" \
    -mixes mixed -mode closed -clients 2 -duration 1s -out "" -baseline "")
echo "$load_out" | grep -q ' errors=0 ' \
    || fail "ring-routed dvfsload stream saw hard errors:"$'\n'"$load_out"
if echo "$load_out" | grep -q ' completed=0 '; then
    fail "ring-routed dvfsload stream completed nothing:"$'\n'"$load_out"
fi

# --- crash recovery -------------------------------------------------
# Two slow searches submitted straight to the owner (workers=1, so the
# second is still queued), then SIGKILL: no drain, no store close. The
# restarted daemon must finish both from its store. The seeds are
# chosen so $owner owns both keys — a seed owned elsewhere would be
# proxied away and run on a node we never kill.
slow_pop=1000 slow_gens=30000
slow_seeds=()
for seed in $(seq 100 160); do
    o=$("$tmp/dvfsctl" -ring "$ring" owner -workload resnet50 \
        -pop "$slow_pop" -gens "$slow_gens" -seed "$seed" \
        | sed -n 's/^owner: \(n[0-9]*\) .*/\1/p')
    [ "$o" = "$owner" ] && slow_seeds+=("$seed")
    [ "${#slow_seeds[@]}" -eq 2 ] && break
done
[ "${#slow_seeds[@]}" -eq 2 ] || fail "found no 2 seeds owned by $owner in 100..160"

echo "cluster-smoke: submitting 2 slow jobs (seeds ${slow_seeds[*]}) to $owner, then SIGKILL"
slow_a=$("$tmp/dvfsctl" -addr "$(addr_of "$owner")" submit -workload resnet50 \
    -pop "$slow_pop" -gens "$slow_gens" -seed "${slow_seeds[0]}" -wait=false \
    | sed -n 's/^job \([^:]*\):.*/\1/p')
slow_b=$("$tmp/dvfsctl" -addr "$(addr_of "$owner")" submit -workload resnet50 \
    -pop "$slow_pop" -gens "$slow_gens" -seed "${slow_seeds[1]}" -wait=false \
    | sed -n 's/^job \([^:]*\):.*/\1/p')
[ -n "$slow_a" ] && [ -n "$slow_b" ] || fail "slow submissions were not acknowledged"
sleep 1 # let the first search start and persist its running record

eval "victim=\$pid_$owner"
kill -KILL "$victim"
wait "$victim" 2>/dev/null || true
owner_port=$(addr_of "$owner" | sed 's/.*://')

echo "cluster-smoke: restarting $owner over the same store"
start_node "$owner" "$owner_port"
wait_healthy "$owner"

"$tmp/dvfsctl" -addr "$(addr_of "$owner")" metrics \
    | grep -q 'dvfsd_store_recovered_jobs [12]' \
    || fail "restarted $owner recovered no jobs from its store"

wait_done() { # wait_done JOB_ID
    for _ in $(seq 1 300); do
        state=$("$tmp/dvfsctl" -addr "$(addr_of "$owner")" status "$1" \
            | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
        case "$state" in
        done) return 0 ;;
        failed | cancelled) fail "recovered job $1 finished $state" ;;
        esac
        sleep 0.2
    done
    fail "recovered job $1 never finished"
}
wait_done "$slow_a"
wait_done "$slow_b"
echo "cluster-smoke: both interrupted jobs recovered to done"

# The pre-crash terminal record survived too: same job ID, same bytes.
"$tmp/dvfsctl" -addr "$(addr_of "$owner")" fetch -save "$tmp/refetched.json" "$job_id"
diff -u "$tmp/batch.json" "$tmp/refetched.json" \
    || fail "terminal record's strategy changed across the crash"
echo "cluster-smoke: pre-crash result still served byte-identically"

echo "cluster-smoke: PASS"
