#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the dvfsd serving layer.
#
# Boots dvfsd on a random port, generates a strategy through the HTTP
# API with dvfsctl, and asserts:
#   1. the served strategy is byte-identical to the cmd/dvfs-run batch
#      path for the same workload/seed (the determinism contract),
#   2. resubmission is served from the cache (hit counter in /metrics),
#   3. /metrics reports the completed jobs,
#   4. SIGTERM shuts the daemon down gracefully (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

echo "serve-smoke: building dvfsd, dvfsctl, dvfs-run"
go build -o "$tmp/dvfsd" ./cmd/dvfsd
go build -o "$tmp/dvfsctl" ./cmd/dvfsctl
go build -o "$tmp/dvfs-run" ./cmd/dvfs-run

echo "serve-smoke: batch reference run (also saves the model bundle)"
"$tmp/dvfs-run" -model resnet50 -pop 16 -gens 8 -seed 7 \
    -save-models "$tmp/models.json" -save-strategy "$tmp/batch.json" -no-measure >/dev/null

echo "serve-smoke: starting dvfsd on a random port"
"$tmp/dvfsd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 1 \
    -load-models "$tmp/models.json" >"$tmp/dvfsd.log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/dvfsd.log" >&2; fail "dvfsd died on startup"; }
    sleep 0.1
done
[ -s "$tmp/addr" ] || fail "dvfsd never wrote its address file"
addr=$(cat "$tmp/addr")
echo "serve-smoke: dvfsd is at $addr"

echo "serve-smoke: submitting resnet50 via dvfsctl"
"$tmp/dvfsctl" -addr "$addr" submit -workload resnet50 -pop 16 -gens 8 -seed 7 \
    -save "$tmp/served.json"

diff -u "$tmp/batch.json" "$tmp/served.json" \
    || fail "served strategy differs from the batch path"
echo "serve-smoke: served strategy is byte-identical to the batch path"

metrics=$("$tmp/dvfsctl" -addr "$addr" metrics)
echo "$metrics" | grep -q 'dvfsd_jobs_total{state="done"} 1' \
    || fail "/metrics does not show one completed job:"$'\n'"$metrics"

echo "serve-smoke: resubmitting (must hit the strategy cache)"
resubmit=$("$tmp/dvfsctl" -addr "$addr" submit -workload resnet50 -pop 16 -gens 8 -seed 7)
echo "$resubmit" | grep -q 'served from cache' \
    || fail "resubmission was not served from cache:"$'\n'"$resubmit"

metrics=$("$tmp/dvfsctl" -addr "$addr" metrics)
echo "$metrics" | grep -q 'dvfsd_cache_hits_total 1' \
    || fail "/metrics does not count the cache hit:"$'\n'"$metrics"
# The cache hit ran no search: done stays at 1 and the hit is counted
# under its own state="cached" label.
echo "$metrics" | grep -q 'dvfsd_jobs_total{state="done"} 1' \
    || fail "/metrics shows more than the one searched job:"$'\n'"$metrics"
echo "$metrics" | grep -q 'dvfsd_jobs_total{state="cached"} 1' \
    || fail "/metrics does not count the cached submission:"$'\n'"$metrics"

echo "serve-smoke: graceful shutdown"
kill -TERM "$pid"
if ! wait "$pid"; then
    cat "$tmp/dvfsd.log" >&2
    fail "dvfsd did not exit cleanly on SIGTERM"
fi
pid=""
grep -q 'drained cleanly' "$tmp/dvfsd.log" || fail "dvfsd did not drain cleanly"

echo "serve-smoke: PASS"
