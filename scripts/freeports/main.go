// Command freeports prints N free loopback TCP ports, one per line.
//
// The cluster smoke script needs the ring file written before any
// daemon boots, so node addresses must be fixed up front — unlike the
// single-node smokes, which let dvfsd pick port 0 and read it back.
// All listeners stay open until every port is collected, so the
// returned set is duplicate-free; the usual bind race after release is
// acceptable for a smoke test.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			fmt.Fprintln(os.Stderr, "usage: freeports [N]")
			os.Exit(2)
		}
		n = v
	}
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeports:", err)
			os.Exit(1)
		}
		lns = append(lns, ln)
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
	}
}
