// GPT-3 training energy optimization: the paper's headline experiment
// (Sect. 7.4) run end to end — profile a ~18,000-operator training
// iteration, build performance and power models, search per-stage
// frequencies with the genetic algorithm at several loss targets, and
// measure each strategy on the simulated NPU.
//
//	go run ./examples/gpt3-training            # full 200x600 search
//	go run ./examples/gpt3-training -quick     # reduced search
package main

import (
	"flag"
	"fmt"
	"log"

	"npudvfs"
)

func main() {
	quick := flag.Bool("quick", false, "use a reduced GA for a faster demo")
	flag.Parse()

	lab := npudvfs.NewLab()
	m, err := npudvfs.WorkloadByName("gpt3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeling %s: %d operators per iteration\n", m.Name, m.Ops())
	ms, err := lab.BuildModels(m, true)
	if err != nil {
		log.Fatal(err)
	}
	base, err := lab.MeasureFixed(m, lab.Chip.Curve.Max())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline at 1800 MHz: iteration %.2f s, SoC %.2f W, AICore %.2f W\n\n",
		base.TimeMicros/1e6, base.MeanSoCW, base.MeanCoreW)

	fmt.Printf("%8s %10s %8s %10s %10s %9s\n",
		"target", "iter", "loss", "SoC", "AICore", "SetFreq")
	for i, target := range []float64{0.02, 0.04, 0.06, 0.08, 0.10} {
		cfg := npudvfs.DefaultStrategyConfig()
		cfg.PerfLossTarget = target
		cfg.GA.Seed = int64(i + 1)
		if *quick {
			cfg.GA.PopSize = 60
			cfg.GA.Generations = 150
		}
		strat, err := npudvfs.GenerateStrategy(ms.Input(lab.Chip), cfg)
		if err != nil {
			log.Fatal(err)
		}
		dvfs, err := lab.MeasureStrategy(m, strat, npudvfs.DefaultExecutorOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0f%% %9.2fs %7.2f%% %8.2fW %9.2fW %9d\n",
			target*100,
			dvfs.TimeMicros/1e6,
			100*(dvfs.TimeMicros/base.TimeMicros-1),
			dvfs.MeanSoCW,
			dvfs.MeanCoreW,
			strat.Switches())
	}
	fmt.Println("\nthe AICore reduction grows with the loss budget while the SoC")
	fmt.Println("reduction stays roughly a third of it: the uncore (HBM, bus,")
	fmt.Println("AICPU) is not frequency-tunable on this platform (Sect. 8.2).")
}
