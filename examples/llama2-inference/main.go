// Host-bound inference (Sect. 8.4): on a Llama2-style decode step the
// CPU dispatches operators more slowly than the NPU executes them, so
// the accelerator idles between kernels and its weights-streaming
// matmuls are memory-bound. Lowering the core frequency mostly fills
// idle time instead of extending the step — large AICore power savings
// at negligible performance cost, without any per-operator strategy.
//
//	go run ./examples/llama2-inference
package main

import (
	"fmt"
	"log"

	"npudvfs"
)

func main() {
	lab := npudvfs.NewLab()
	m, err := npudvfs.WorkloadByName("llama2-inference")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d trace entries per decode step\n\n", m.Name, m.Ops())
	base, err := lab.MeasureFixed(m, lab.Chip.Curve.Max())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %12s %12s %12s\n", "MHz", "step", "SoC", "AICore")
	for _, f := range []npudvfs.MHz{1800, 1600, 1400, 1300, 1200, 1000} { //lint:allow unitcheck demo sweep over vf.Ascend grid points (paper Fig. 19 frequencies)
		r, err := lab.MeasureFixed(m, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f %10.2fms %11.2fW %11.2fW   (loss %+5.2f%%, AICore %+6.2f%%)\n",
			f, r.TimeMicros/1000, r.MeanSoCW, r.MeanCoreW,
			100*(r.TimeMicros/base.TimeMicros-1),
			100*(r.MeanCoreW/base.MeanCoreW-1))
	}
	fmt.Println("\nthe paper's observation: down to 1300 MHz the decode step is")
	fmt.Println("barely slower — execution time grows but fills existing NPU idle")
	fmt.Println("gaps — while AICore power drops by roughly a quarter.")
}
