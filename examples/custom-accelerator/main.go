// Porting the methodology to different hardware (Sect. 8.3): the
// performance model only assumes the L1/L2/HBM memory-hierarchy
// abstraction and the power model only physics, so both transfer to
// any accelerator with the same structure. This example defines a
// GPU-like accelerator — fewer, wider cores, higher HBM bandwidth, a
// wider voltage range — plus its own workload, and runs the full
// pipeline on it.
//
//	go run ./examples/custom-accelerator
package main

import (
	"fmt"
	"log"

	"npudvfs"
	"npudvfs/internal/vf"
)

func main() {
	// 1. Describe the custom accelerator. A "GPU-like" part: 16 wide
	//    cores, 2.4 TB/s HBM, 6 TB/s L2, DVFS from 800 to 2000 MHz
	//    with the voltage knee at 1400 MHz.
	//lint:allow unitcheck custom chip definition: this example authors its own V-F table
	curve, err := vf.New(800, 2000, 100, 1400, 0.70, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	chip := &npudvfs.Chip{
		Name:   "gpu-like",
		Cores:  16,
		CLoad:  128,
		CStore: 128,
		BWL2:   6000 * 1000, // bytes/µs
		BWHBM:  2400 * 1000,
		T0:     0.15,
		Curve:  curve,
	}
	if err := chip.Validate(); err != nil {
		log.Fatal(err)
	}
	ground := npudvfs.DefaultGroundTruth(chip)
	ground.UncoreIdle = 120 // a different platform, different floor
	thermalParams := npudvfs.DefaultThermal()
	thermalParams.KCPerWatt = 0.09

	lab := npudvfs.NewLabFor(chip, ground, thermalParams, 7)

	// 2. A custom workload: alternate compute-bound GEMM phases and
	//    memory-bound embedding/normalization phases.
	var trace []npudvfs.OpSpec
	for layer := 0; layer < 40; layer++ {
		trace = append(trace,
			npudvfs.OpSpec{
				Name: "GEMM", Shape: "8kx8k", Blocks: 8,
				Scenario:  2, // PingPong, independent Ld/St
				LoadBytes: 16 << 20 / 8, StoreBytes: 8 << 20 / 8,
				CoreCycles: 3.5e6 / 8, CorePipe: 0 /* cube */, L2Hit: 0.8, PrePostTime: 2,
			},
			npudvfs.OpSpec{
				Name: "EmbeddingLookup", Shape: "64M", Blocks: 8,
				LoadBytes: 128 << 20 / 8, StoreBytes: 32 << 20 / 8,
				CoreCycles: 2000, CorePipe: 1 /* vector */, L2Hit: 0.1, PrePostTime: 2,
			},
			npudvfs.OpSpec{
				Name: "RMSNorm", Shape: "16M", Blocks: 6,
				LoadBytes: 32 << 20 / 6, StoreBytes: 32 << 20 / 6,
				CoreCycles: 4000, CorePipe: 1, L2Hit: 0.2, PrePostTime: 2,
			},
		)
	}
	m := &npudvfs.Workload{Name: "custom-mixed", Trace: trace}
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	// 3. Same pipeline as on the reference chip: model, search,
	//    measure.
	ms, err := lab.BuildModels(m, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := npudvfs.DefaultStrategyConfig()
	cfg.PriorLFCMHz = 1600 //lint:allow unitcheck seed frequency for the GA prior, a point on this chip's custom grid
	cfg.GA.PopSize = 80
	cfg.GA.Generations = 200
	strat, err := npudvfs.GenerateStrategy(ms.Input(lab.Chip), cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := lab.MeasureFixed(m, chip.Curve.Max())
	if err != nil {
		log.Fatal(err)
	}
	dvfs, err := lab.MeasureStrategy(m, strat, npudvfs.DefaultExecutorOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom accelerator %q: grid %v MHz\n", chip.Name, []npudvfs.MHz{curve.Min(), curve.Max()})
	fmt.Printf("iteration: %.2f ms -> %.2f ms (%+.2f%%)\n",
		base.TimeMicros/1000, dvfs.TimeMicros/1000, 100*(dvfs.TimeMicros/base.TimeMicros-1))
	fmt.Printf("AICore:    %.2f W -> %.2f W (%+.2f%%)\n",
		base.MeanCoreW, dvfs.MeanCoreW, 100*(dvfs.MeanCoreW/base.MeanCoreW-1))
	fmt.Printf("SoC:       %.2f W -> %.2f W (%+.2f%%), %d SetFreq/iteration\n",
		base.MeanSoCW, dvfs.MeanSoCW, 100*(dvfs.MeanSoCW/base.MeanSoCW-1), strat.Switches())
}
