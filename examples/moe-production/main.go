// Production workflow on a mixture-of-experts workload: generate a
// strategy once, persist it as JSON, export a chrome://tracing
// timeline, then deploy with the closed-loop guard that keeps the
// realized loss under the target across iterations.
//
//	go run ./examples/moe-production
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"npudvfs"
	"npudvfs/internal/traceio"
)

func main() {
	lab := npudvfs.NewLab()
	m, err := npudvfs.WorkloadByName("mixtral-moe")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d operators per iteration\n", m.Name, m.Ops())

	// 1. Model and search once (the paper's Fig. 1 pipeline).
	ms, err := lab.BuildModels(m, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := npudvfs.DefaultStrategyConfig()
	cfg.GA.PopSize = 100
	cfg.GA.Generations = 300
	strat, err := npudvfs.GenerateStrategy(ms.Input(lab.Chip), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Persist the artifacts: the strategy JSON is what a deployment
	//    ships; the chrome trace is for humans.
	dir, err := os.MkdirTemp("", "moe-production")
	if err != nil {
		log.Fatal(err)
	}
	strategyPath := filepath.Join(dir, "strategy.json")
	if err := npudvfs.SaveStrategy(strategyPath, strat); err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(dir, "timeline.json")
	if err := traceio.SaveChromeTrace(tracePath, ms.Baseline, strat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy (%d SetFreq) -> %s\nchrome trace -> %s\n",
		strat.Switches(), strategyPath, tracePath)

	// 3. Deploy: reload the strategy and run it under the guard.
	deployed, err := npudvfs.LoadStrategy(strategyPath)
	if err != nil {
		log.Fatal(err)
	}
	base, err := lab.MeasureFixed(m, lab.Chip.Curve.Max())
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := npudvfs.NewAdaptiveController(lab.Chip.Curve, deployed, npudvfs.Micros(base.TimeMicros), cfg.PerfLossTarget)
	if err != nil {
		log.Fatal(err)
	}
	ex := npudvfs.NewExecutor(lab.Chip, lab.Ground)
	state := npudvfs.NewThermalState(npudvfs.DefaultThermal())
	state.SetTemp(npudvfs.Celsius(base.EndTempC)) // start warmed up
	fmt.Printf("\nbaseline: %.1f ms, %.2f W AICore\n", base.TimeMicros/1000, base.MeanCoreW)
	for iter := 0; iter < 8; iter++ {
		res, err := ex.Run(m.Trace, ctl.Strategy(), state, npudvfs.DefaultExecutorOptions())
		if err != nil {
			log.Fatal(err)
		}
		adj := ctl.Observe(npudvfs.Micros(res.TimeMicros))
		fmt.Printf("iter %d: %.1f ms (%+.2f%%), AICore %.2f W (%+.2f%%)  [%v]\n",
			iter, res.TimeMicros/1000,
			100*(res.TimeMicros/base.TimeMicros-1),
			res.MeanCoreW, 100*(res.MeanCoreW/base.MeanCoreW-1), adj)
	}
}
