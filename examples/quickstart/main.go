// Quickstart: model a single operator's time/frequency behaviour from
// two profiled points, then run a small end-to-end DVFS optimization.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"npudvfs"
)

func main() {
	chip := npudvfs.DefaultChip()

	// 1. Describe an operator the way the CANN profiler would see it:
	//    a memory-heavy vector kernel with half its traffic hitting L2.
	gelu := npudvfs.OpSpec{
		Name: "Gelu", Shape: "demo", Scenario: 0, // Compute / PingPongFree-Indep
		Blocks: 6, LoadBytes: 4 << 20, StoreBytes: 4 << 20,
		CoreCycles: 3000, CorePipe: 1 /* vector */, L2Hit: 0.5, PrePostTime: 2,
	}
	if err := gelu.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. "Profile" it at the two endpoints of the DVFS range and fit
	//    the production performance model T(f) = A·f + C/f (Sect. 4.3).
	fit := []npudvfs.MHz{1000, 1800} //lint:allow unitcheck the DVFS window edges (vf.Ascend Min/Max), spelled out for the walkthrough
	times := []npudvfs.Micros{npudvfs.Micros(chip.Time(&gelu, 1000)), npudvfs.Micros(chip.Time(&gelu, 1800))}
	model, err := npudvfs.FitPerfModel(fit, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Gelu time vs core frequency (measured | Func.2 prediction):")
	for _, f := range chip.Curve.Grid() {
		fmt.Printf("  %4.0f MHz  %7.2f us | %7.2f us\n", f, chip.Time(&gelu, float64(f)), model.Micros(f))
	}
	fs := chip.SaturationMHz(chip.CLoad, gelu.L2Hit)
	fmt.Printf("uncore saturation at %.0f MHz: below it the kernel speeds up with f, above it it does not\n\n", fs)

	// 3. End-to-end: optimize a ResNet-50 training iteration at a 2%
	//    performance-loss target and measure the result.
	lab := npudvfs.NewLab()
	m, err := npudvfs.WorkloadByName("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizing %s (%d operators)...\n", m.Name, m.Ops())
	ms, err := lab.BuildModels(m, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := npudvfs.DefaultStrategyConfig()
	cfg.GA.PopSize = 80 // reduced from the paper's 200x600 for a fast demo
	cfg.GA.Generations = 200
	strat, err := npudvfs.GenerateStrategy(ms.Input(lab.Chip), cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := lab.MeasureFixed(m, lab.Chip.Curve.Max())
	if err != nil {
		log.Fatal(err)
	}
	dvfs, err := lab.MeasureStrategy(m, strat, npudvfs.DefaultExecutorOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration: %.1f ms -> %.1f ms (%+.2f%%)\n",
		base.TimeMicros/1000, dvfs.TimeMicros/1000, 100*(dvfs.TimeMicros/base.TimeMicros-1))
	fmt.Printf("AICore:    %.2f W -> %.2f W (%+.2f%%)\n",
		base.MeanCoreW, dvfs.MeanCoreW, 100*(dvfs.MeanCoreW/base.MeanCoreW-1))
	fmt.Printf("SoC:       %.2f W -> %.2f W (%+.2f%%), %d SetFreq/iteration\n",
		base.MeanSoCW, dvfs.MeanSoCW, 100*(dvfs.MeanSoCW/base.MeanSoCW-1), strat.Switches())
}
