# Tier-1 verification: build, vet, formatting, the dvfslint analyzer
# suite, full test suite, then the race detector over every package
# (the repo ships concurrency — shared Executors, GA worker pools, the
# parallel experiment harness and the dvfsd serving layer — so a
# race-clean run is part of "tests pass"), and finally the dvfsd
# end-to-end smoke.
.PHONY: verify build test vet fmt-check lint lint-fast race short bench serve-smoke load-smoke cluster-smoke load-bench

verify: build vet fmt-check lint test race serve-smoke load-smoke cluster-smoke

build:
	go build ./...

vet:
	go vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# dvfslint enforces the determinism, concurrency and serving/cluster
# contracts (DESIGN.md §9): seeded randomness only, tolerance-based
# float comparison, ctx-cancellable searches, paired locks, tracked
# goroutines, dimensional safety, and the interprocedural serving
# rules (errsink, atomicwrite, respclose, metricflow). Results are
# cached per package under .cache/dvfslint, keyed by file content and
# transitive dependency hashes, so a warm run only re-analyzes what
# changed. Run a subset with e.g.:
#   go run ./cmd/dvfslint -rules detrand,floateq
lint:
	go run ./cmd/dvfslint -cache .cache/dvfslint

# Changed-packages-only lint for local iteration: diffs the working
# tree against HEAD, maps changed .go files to their package dirs and
# analyzes just those (dependencies still type-check for facts, and
# the warm cache makes that near-free). Full `make lint` remains the
# gate.
lint-fast:
	./scripts/lint_fast.sh

test:
	go test ./...

race:
	go test -race ./...

short:
	go test -short ./...

# Runs the hot-path benchmarks (including the island-engine scaling
# curve) and writes results/BENCH_10.json with speedup_vs_seed ratios
# against the frozen baseline in results/BENCH_5_SEED.json. On hosts
# with ≥4 cores it also asserts the 1->4 worker scaling floor. See
# DESIGN.md §10 and §13 for how to read it.
bench:
	./scripts/bench.sh

# Every benchmark in the repo, once each — the CI smoke that they
# still compile and run — plus the cheap perf-contract assertions
# (BenchmarkGASearch must stay allocation-free).
bench-smoke:
	./scripts/bench_smoke.sh

# Boots dvfsd on a random port, submits the quickstart trace through
# dvfsctl, asserts the served strategy matches the batch path and that
# resubmission hits the cache, then shuts down gracefully.
serve-smoke:
	./scripts/serve_smoke.sh

# Bounded dvfsload smoke: replays the three canonical mixes for ~1 s
# each against fresh in-process daemons and sanity-checks the emitted
# artifact (every mix present, non-zero QPS, no hard errors).
load-smoke:
	./scripts/load_smoke.sh

# Boots a 3-node consistent-hash cluster with durable fs stores,
# submits through a non-owner (asserting the forward and the cache
# locality it buys), SIGKILLs the owner mid-search and asserts the
# restarted node recovers every acknowledged job. DESIGN.md §12.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Full load benchmark: replays the canonical mixes at defaults and
# writes results/BENCH_6.json with qps/p99 _vs_seed ratios against the
# frozen baseline in results/BENCH_6_SEED.json. See DESIGN.md §11.
load-bench:
	go run ./cmd/dvfsload
