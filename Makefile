# Tier-1 verification: build, vet, full test suite, then the race
# detector over every package (the repo ships concurrency — shared
# Executors, GA worker pools, the parallel experiment harness and the
# dvfsd serving layer — so a race-clean run is part of "tests pass"),
# and finally the dvfsd end-to-end smoke.
.PHONY: verify build test vet race short bench serve-smoke

verify: build vet test race serve-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

short:
	go test -short ./...

bench:
	go test -bench=. -benchmem

# Boots dvfsd on a random port, submits the quickstart trace through
# dvfsctl, asserts the served strategy matches the batch path and that
# resubmission hits the cache, then shuts down gracefully.
serve-smoke:
	./scripts/serve_smoke.sh
