# Tier-1 verification: build, vet, full test suite, then the race
# detector over every package (the repo ships concurrency — shared
# Executors, GA worker pools, the parallel experiment harness — so a
# race-clean run is part of "tests pass").
.PHONY: verify build test vet race short bench

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

short:
	go test -short ./...

bench:
	go test -bench=. -benchmem
